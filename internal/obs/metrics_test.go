package obs

import (
	"strings"
	"testing"
)

// buildTestRegistry covers every renderer feature the golden test pins:
// multi-label counters with escaping-hostile values, a histogram whose
// buckets must render cumulatively with an explicit +Inf, a negative
// gauge, and a collector-backed info family.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	req := reg.Counter("test_requests_total", "Requests.", "endpoint", "code")
	req.With("search", "200").Add(2)
	req.With("we\"ird\\\n", "500").Inc()
	lat := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	for _, v := range []float64{0.0625, 0.25, 0.5, 5} {
		lat.Observe(v)
	}
	reg.Gauge("test_temp", "Temperature.").Set(-2.5)
	reg.Func("test_info", "Info.", Gauge, []string{"version"}, func() []Sample {
		return []Sample{{Labels: []string{"v1"}, Value: 1}}
	})
	return reg
}

// TestWritePrometheusGolden pins the exposition output byte for byte:
// family ordering, HELP/TYPE lines, label escaping (quote, backslash,
// newline), cumulative histogram buckets, the +Inf bucket, and _sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	const golden = `# HELP test_info Info.
# TYPE test_info gauge
test_info{version="v1"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.8125
test_latency_seconds_count 4
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{endpoint="search",code="200"} 2
test_requests_total{endpoint="we\"ird\\\n",code="500"} 1
# HELP test_temp Temperature.
# TYPE test_temp gauge
test_temp -2.5
`
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Errorf("rendered exposition differs from golden.\ngot:\n%s\nwant:\n%s", b.String(), golden)
	}
}

func TestRenderedExpositionValidates(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own output does not validate: %v", err)
	}
	if want := 9; n != want {
		t.Errorf("validated %d samples, want %d", n, want)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name": "9bad_name 1\n",
		"bad value":       "ok_name notafloat\n",
		"bad escape":      "m{l=\"a\\q\"} 1\n",
		"unterminated":    "m{l=\"a} 1\n",
		"unknown kind":    "# TYPE m weird\nm 1\n",
		"duplicate TYPE":  "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"not contiguous":  "a 1\nb 2\na 3\n",
		"missing +Inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"not cumulative":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing sum":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: validated, want error:\n%s", name, text)
		}
	}
}

func TestValidateExpositionAcceptsLooseButLegal(t *testing.T) {
	text := "# a free-form comment\n" +
		"untyped_no_type_line 4.25\n" +
		"with_ts{a=\"b\"} 1 1700000000\n" +
		"inf_value +Inf\n" +
		"nan_value NaN\n"
	n, err := ValidateExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("legal exposition rejected: %v", err)
	}
	if n != 4 {
		t.Errorf("got %d samples, want 4", n)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestConflictingRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "", "a")
	// Same name, same shape: allowed, returns the same family.
	reg.Counter("m", "", "a").With("x").Inc()
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestEmptyFamiliesAreOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("never_used_total", "Unused.", "l")
	reg.Func("absent", "Absent.", Gauge, nil, func() []Sample { return nil })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty registry rendered %q, want nothing", b.String())
	}
}
