package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// driveRecorder simulates two half iterations with two workers, a loss
// point, and a checkpoint save.
func driveRecorder(r *TrainRecorder) {
	r.SetMeta("alstrain", "MVLE", 10, 0.1, 5)
	r.SetShape(100, 40, 800, 2, "tb+vec+fus", "implicit")
	for it := 1; it <= 1; it++ {
		for _, half := range []string{"X", "Y"} {
			r.BeginHalf(it, half, 100, 800, 2)
			r.WorkerReport(0, 2*time.Millisecond, 3, 60, StageDur{0, 0, time.Millisecond, time.Millisecond})
			r.WorkerReport(1, time.Millisecond, 2, 40, StageDur{0, 0, time.Millisecond / 2, time.Millisecond / 2})
			r.EndHalf()
		}
		r.RecordLoss(it, "Y", 42.5)
		r.IterDone(it)
	}
	r.RecordCheckpoint("save", 3*time.Millisecond, 4096, nil)
}

func TestTrainRecorderMetrics(t *testing.T) {
	rec := NewTrainRecorder()
	reg := NewRegistry()
	rec.Register(reg)
	driveRecorder(rec)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("train metrics do not validate: %v\n%s", err, out)
	}
	for _, want := range []string{
		"als_train_iteration 1",
		"als_train_loss 42.5",
		`als_train_halves_total{half="X"} 1`,
		`als_train_halves_total{half="Y"} 1`,
		`als_train_rows_total{half="X"} 100`,
		`als_train_stage_seconds_total{stage="s1+s2",mode="implicit"}`,
		`als_train_stage_seconds_total{stage="s3",mode="implicit"}`,
		`als_train_worker_chunks_total{worker="0"} 6`,
		`als_train_worker_chunks_total{worker="1"} 4`,
		`als_train_worker_busy_seconds_total{worker="0"} 0.004`,
		`als_checkpoint_io_bytes_total{op="save"} 4096`,
		`als_checkpoint_io_total{op="save",result="ok"} 1`,
		`als_train_info{program="alstrain",dataset="MVLE",variant="tb+vec+fus",mode="implicit",k="10",workers="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestTrainRecorderRunInfo(t *testing.T) {
	rec := NewTrainRecorder()
	driveRecorder(rec)
	info := rec.RunInfo()
	if info.Meta.Dataset != "MVLE" || info.Meta.Variant != "tb+vec+fus" {
		t.Errorf("meta not merged: %+v", info.Meta)
	}
	if info.Iteration != 1 || info.Halves != 2 || info.Checkpoints != 1 {
		t.Errorf("progress = iter %d, halves %d, ckpts %d", info.Iteration, info.Halves, info.Checkpoints)
	}
	if info.LastLoss == nil || *info.LastLoss != 42.5 {
		t.Errorf("last loss = %v, want 42.5", info.LastLoss)
	}
	if info.StageSeconds["s3"] <= 0 {
		t.Errorf("stage totals missing s3: %v", info.StageSeconds)
	}
	// The payload must be JSON-serializable for /runinfo.
	if _, err := json.Marshal(info); err != nil {
		t.Fatalf("runinfo does not marshal: %v", err)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := NewTrainRecorder()
	driveRecorder(rec)
	var b strings.Builder
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	seen := map[string]int{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Ph+"/"+ev.Name]++
	}
	for _, want := range []string{"X/iter1/X", "X/iter1/Y", "X/busy", "C/loss", "X/save",
		"M/process_name", "M/thread_name"} {
		if seen[want] == 0 {
			t.Errorf("trace missing event %s (saw %v)", want, seen)
		}
	}
	if seen["X/busy"] != 4 { // 2 workers x 2 halves
		t.Errorf("busy spans = %d, want 4", seen["X/busy"])
	}
}

func TestWriteJSONL(t *testing.T) {
	rec := NewTrainRecorder()
	driveRecorder(rec)
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	kinds := map[string]int{}
	lines := 0
	for sc.Scan() {
		lines++
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v (%s)", lines, err, sc.Text())
		}
		kinds[ev.Event]++
	}
	if kinds["meta"] != 1 || kinds["half"] != 2 || kinds["loss"] != 1 || kinds["checkpoint"] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
}

// TestNilRecorderIsInert: every hook must be callable on a nil recorder so
// the disabled path needs no call-site guards.
func TestNilRecorderIsInert(t *testing.T) {
	var rec *TrainRecorder
	driveRecorder(rec)
	rec.Register(NewRegistry())
	if err := rec.WriteChromeTrace(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	_ = rec.RunInfo()
}
