package obs_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAlstrainDebugSmoke is the observability end-to-end check the CI lane
// runs: build alstrain, train one iteration with -debug-addr and the trace
// exports on, scrape /metrics while the server lingers, and hold the output
// to the strict exposition parser. It fails on unparseable exposition
// output, a missing stage/worker metric, or an invalid trace file.
func TestAlstrainDebugSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "alstrain")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/alstrain")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building alstrain: %v\n%s", err, out)
	}

	tracePath := filepath.Join(dir, "run.trace.json")
	eventsPath := filepath.Join(dir, "run.events.jsonl")
	cmd := exec.Command(bin,
		"-preset", "MVLE", "-scale", "0.005", "-iters", "1", "-test-frac", "0",
		"-debug-addr", "127.0.0.1:0", "-debug-linger", "30s",
		"-trace-out", tracePath, "-events-out", eventsPath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Follow stdout: grab the bound debug address, then wait until the run
	// is done (the linger line) so the scrape sees the full training run.
	var addr string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
wait:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("alstrain exited before lingering")
			}
			if rest, found := strings.CutPrefix(line, "debug server listening on http://"); found {
				addr = rest
			}
			if strings.HasPrefix(line, "debug server lingering") {
				break wait
			}
		case <-deadline:
			t.Fatal("timed out waiting for alstrain")
		}
	}
	if addr == "" {
		t.Fatal("alstrain never printed the debug address")
	}

	body := get(t, "http://"+addr+"/metrics")
	n, err := obs.ValidateExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("/metrics served zero samples")
	}
	for _, want := range []string{
		"als_train_iteration 1",
		`als_train_halves_total{half="X"} 1`,
		`als_train_halves_total{half="Y"} 1`,
		"als_train_stage_seconds_total{stage=",
		"als_train_worker_busy_seconds_total{worker=",
		"als_train_info{program=\"alstrain\"",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var info obs.TrainRunInfo
	if err := json.Unmarshal([]byte(get(t, "http://"+addr+"/runinfo")), &info); err != nil {
		t.Fatalf("/runinfo is not JSON: %v", err)
	}
	if info.Iteration != 1 || info.Halves != 2 {
		t.Errorf("/runinfo progress iter=%d halves=%d, want 1 and 2", info.Iteration, info.Halves)
	}

	if body := get(t, "http://"+addr+"/debug/pprof/cmdline"); !strings.Contains(body, "alstrain") {
		t.Errorf("pprof cmdline does not mention alstrain: %q", body)
	}

	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBytes, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
	events, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event log: %v", err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(events)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("event log line %d is not JSON: %q", i+1, line)
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
