package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer is the live inspection endpoint a long run exposes via
// -debug-addr: Prometheus /metrics, /runinfo (a JSON snapshot of the run),
// and the full net/http/pprof suite under /debug/pprof/.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// StartDebug listens on addr (":0" picks a free port; see Addr) and serves
// the debug endpoints in a background goroutine. reg may be nil (serves an
// empty but valid exposition); runinfo may be nil (404s /runinfo).
func StartDebug(addr string, reg *Registry, runinfo func() any) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	if runinfo != nil {
		mux.HandleFunc("GET /runinfo", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(runinfo())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{srv: &http.Server{Handler: mux}, lis: lis}
	go d.srv.Serve(lis)
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// RegisterProcessMetrics adds scrape-time process-level gauges (goroutines,
// heap footprint, GC work, uptime) to reg, so every -debug-addr endpoint
// answers the basic "is this process healthy" questions without wiring.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.Func("process_uptime_seconds", "Seconds since the process registered its metrics.", Gauge, nil,
		func() []Sample {
			return []Sample{{Value: time.Since(start).Seconds()}}
		})
	reg.Func("go_goroutines", "Live goroutines.", Gauge, nil, func() []Sample {
		return []Sample{{Value: float64(runtime.NumGoroutine())}}
	})
	reg.Func("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", Gauge, nil,
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.HeapAlloc)}}
		})
	reg.Func("go_memstats_total_alloc_bytes", "Cumulative bytes allocated on the heap.", Counter, nil,
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.TotalAlloc)}}
		})
	reg.Func("go_gc_cycles_total", "Completed GC cycles.", Counter, nil, func() []Sample {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Sample{{Value: float64(ms.NumGC)}}
	})
}
