package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer is the live inspection endpoint a long run exposes via
// -debug-addr: Prometheus /metrics, /runinfo (a JSON snapshot of the run),
// /healthz and /readyz probes, and the full net/http/pprof suite under
// /debug/pprof/.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// DebugConfig selects what a debug server exposes. Every field is
// optional: a zero config still serves an empty-but-valid /metrics,
// always-200 probes, and pprof.
type DebugConfig struct {
	// Registry backs GET /metrics (nil serves an empty exposition).
	Registry *Registry
	// RunInfo backs GET /runinfo (nil 404s the route).
	RunInfo func() any
	// Live backs GET /healthz: nil or a nil return is 200 "ok", an error
	// is 503 with the message. Liveness should fail only when the process
	// is beyond recovery (a restart would help).
	Live func() error
	// Ready backs GET /readyz the same way. Readiness gates traffic: fail
	// it while the process is alive but should not receive requests yet
	// (no model installed, checkpoint too stale).
	Ready func() error
	// Traces backs GET /debug/traces (nil leaves the route unmounted).
	// rtrace.Tracer.TracesHandler serves its span ring buffer here as
	// Chrome trace-event JSON; obs stays decoupled from the tracer by
	// taking a plain handler.
	Traces http.Handler
	// Slowest backs GET /debug/slowest the same way
	// (rtrace.Tracer.SlowestHandler: the per-endpoint slow-request
	// flight recorder).
	Slowest http.Handler
}

// DebugMux builds the debug route table without binding a listener, so
// tests can drive it through net/http/httptest.
func DebugMux(cfg DebugConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if cfg.Registry != nil {
			cfg.Registry.WritePrometheus(w)
		}
	})
	if cfg.RunInfo != nil {
		mux.HandleFunc("GET /runinfo", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(cfg.RunInfo())
		})
	}
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if check != nil {
				if err := check(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("ok\n"))
		}
	}
	mux.HandleFunc("GET /healthz", probe(cfg.Live))
	mux.HandleFunc("GET /readyz", probe(cfg.Ready))
	if cfg.Traces != nil {
		mux.Handle("GET /debug/traces", cfg.Traces)
	}
	if cfg.Slowest != nil {
		mux.Handle("GET /debug/slowest", cfg.Slowest)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr (":0" picks a free port; see Addr) and
// serves DebugMux(cfg) in a background goroutine.
func StartDebugServer(addr string, cfg DebugConfig) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{srv: &http.Server{Handler: DebugMux(cfg)}, lis: lis}
	go d.srv.Serve(lis)
	return d, nil
}

// StartDebug is StartDebugServer with the pre-probe signature, kept for
// callers that only expose metrics and run info.
func StartDebug(addr string, reg *Registry, runinfo func() any) (*DebugServer, error) {
	return StartDebugServer(addr, DebugConfig{Registry: reg, RunInfo: runinfo})
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// RegisterProcessMetrics adds scrape-time process-level gauges (goroutines,
// heap footprint, GC work, uptime) to reg, so every -debug-addr endpoint
// answers the basic "is this process healthy" questions without wiring.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.Func("process_uptime_seconds", "Seconds since the process registered its metrics.", Gauge, nil,
		func() []Sample {
			return []Sample{{Value: time.Since(start).Seconds()}}
		})
	reg.Func("go_goroutines", "Live goroutines.", Gauge, nil, func() []Sample {
		return []Sample{{Value: float64(runtime.NumGoroutine())}}
	})
	reg.Func("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", Gauge, nil,
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.HeapAlloc)}}
		})
	reg.Func("go_memstats_total_alloc_bytes", "Cumulative bytes allocated on the heap.", Counter, nil,
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.TotalAlloc)}}
		})
	reg.Func("go_gc_cycles_total", "Completed GC cycles.", Counter, nil, func() []Sample {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Sample{{Value: float64(ms.NumGC)}}
	})
}
