package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric family type.
type Kind uint8

const (
	Counter Kind = iota
	Gauge
	Histogram
	Untyped
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Sample is one series produced by a collector-backed family: the label
// values (matching the family's declared label names) and the value at
// scrape time.
type Sample struct {
	Labels []string
	Value  float64
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds, excluding +Inf

	collect func() []Sample // collector-backed family; nil for stored series

	mu     sync.Mutex
	series map[string]*Metric
}

// Counter registers (or returns the existing) counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *Vec {
	return &Vec{r.family(name, help, Counter, nil, labelNames)}
}

// Gauge registers (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Vec {
	return &Vec{r.family(name, help, Gauge, nil, labelNames)}
}

// Histogram registers (or returns the existing) histogram family with the
// given strictly-increasing bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Vec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing", name))
		}
	}
	return &Vec{r.family(name, help, Histogram, buckets, labelNames)}
}

// Func registers a collector-backed family: collect is called at every
// render and must return one Sample per live series. Histograms cannot be
// collector-backed.
func (r *Registry) Func(name, help string, kind Kind, labelNames []string, collect func() []Sample) {
	if kind == Histogram {
		panic("obs: histogram families cannot be collector-backed")
	}
	if collect == nil {
		panic("obs: nil collector for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("obs: duplicate registration of " + name)
	}
	r.fams[name] = &family{name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...), collect: collect}
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labelNames {
		if !validLabelName(l) {
			panic("obs: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) || f.collect != nil {
			panic("obs: conflicting re-registration of " + name)
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic("obs: conflicting re-registration of " + name)
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*Metric)}
	r.fams[name] = f
	return f
}

// Vec is a handle on a metric family; With resolves one labeled series.
// The no-argument convenience methods operate on the unlabeled series of a
// zero-label family.
type Vec struct{ fam *family }

// With returns the series for the given label values (created on first
// use). The number of values must match the family's declared labels.
func (v *Vec) With(labelValues ...string) *Metric {
	f := v.fam
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = &Metric{fam: f, labels: append([]string(nil), labelValues...)}
		if f.kind == Histogram {
			m.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = m
	}
	return m
}

func (v *Vec) Add(d float64)     { v.With().Add(d) }
func (v *Vec) Inc()              { v.With().Add(1) }
func (v *Vec) Set(val float64)   { v.With().Set(val) }
func (v *Vec) Observe(x float64) { v.With().Observe(x) }
func (v *Vec) Value() float64    { return v.With().Value() }

// Metric is one series: a counter/gauge value or a histogram.
type Metric struct {
	fam    *family
	labels []string

	mu     sync.Mutex
	val    float64
	counts []uint64 // histogram: per-bucket (non-cumulative), last is +Inf
	sum    float64
	count  uint64
}

// Add increments a counter or moves a gauge. Counters reject negative
// deltas (a decreasing counter breaks every rate() over it).
func (m *Metric) Add(d float64) {
	if m.fam.kind == Histogram {
		panic("obs: Add on histogram " + m.fam.name)
	}
	if m.fam.kind == Counter && d < 0 {
		panic("obs: negative Add on counter " + m.fam.name)
	}
	m.mu.Lock()
	m.val += d
	m.mu.Unlock()
}

// Inc adds one.
func (m *Metric) Inc() { m.Add(1) }

// Set moves a gauge to an absolute value.
func (m *Metric) Set(val float64) {
	if m.fam.kind != Gauge && m.fam.kind != Untyped {
		panic("obs: Set on non-gauge " + m.fam.name)
	}
	m.mu.Lock()
	m.val = val
	m.mu.Unlock()
}

// Observe records one histogram observation.
func (m *Metric) Observe(x float64) {
	if m.fam.kind != Histogram {
		panic("obs: Observe on non-histogram " + m.fam.name)
	}
	idx := sort.SearchFloat64s(m.fam.buckets, x)
	m.mu.Lock()
	m.counts[idx]++
	m.sum += x
	m.count++
	m.mu.Unlock()
}

// Value reads the current counter/gauge value (histograms: the sum).
func (m *Metric) Value() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fam.kind == Histogram {
		return m.sum
	}
	return m.val
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// histograms as cumulative _bucket/_sum/_count with an explicit +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if err := f.render(&b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) error {
	if f.collect != nil {
		samples := f.collect()
		if len(samples) == 0 {
			return nil // absent series: omit the family entirely
		}
		header(b, f)
		sort.Slice(samples, func(i, j int) bool {
			return lessLabels(samples[i].Labels, samples[j].Labels)
		})
		for _, s := range samples {
			if len(s.Labels) != len(f.labelNames) {
				return fmt.Errorf("obs: collector for %s returned %d label values, want %d",
					f.name, len(s.Labels), len(f.labelNames))
			}
			sampleLine(b, f.name, f.labelNames, s.Labels, s.Value)
		}
		return nil
	}

	f.mu.Lock()
	series := make([]*Metric, 0, len(f.series))
	for _, m := range f.series {
		series = append(series, m)
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return nil
	}
	sort.Slice(series, func(i, j int) bool { return lessLabels(series[i].labels, series[j].labels) })

	header(b, f)
	for _, m := range series {
		m.mu.Lock()
		val, sum, count := m.val, m.sum, m.count
		counts := append([]uint64(nil), m.counts...)
		m.mu.Unlock()
		if f.kind != Histogram {
			sampleLine(b, f.name, f.labelNames, m.labels, val)
			continue
		}
		names := append(append([]string(nil), f.labelNames...), "le")
		var cum uint64
		for i, le := range f.buckets {
			cum += counts[i]
			vals := append(append([]string(nil), m.labels...), formatValue(le))
			sampleLine(b, f.name+"_bucket", names, vals, float64(cum))
		}
		vals := append(append([]string(nil), m.labels...), "+Inf")
		sampleLine(b, f.name+"_bucket", names, vals, float64(count))
		sampleLine(b, f.name+"_sum", f.labelNames, m.labels, sum)
		sampleLine(b, f.name+"_count", f.labelNames, m.labels, float64(count))
	}
	return nil
}

func header(b *strings.Builder, f *family) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
}

func sampleLine(b *strings.Builder, name string, labelNames, labelValues []string, val float64) {
	b.WriteString(name)
	if len(labelNames) > 0 {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(val))
	b.WriteByte('\n')
}

func lessLabels(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func formatValue(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 0 && v*0.5 == v: // +Inf
		return "+Inf"
	case v < 0 && v*0.5 == v: // -Inf
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" {
		return false // le is reserved for histogram buckets
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
