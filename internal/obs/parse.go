package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition strictly parses the Prometheus text exposition format
// (version 0.0.4) and returns the number of samples read. It checks line
// syntax (metric and label names, quoting and escapes, float values), that
// TYPE declarations precede their samples and each family's samples stay
// contiguous, and histogram invariants: buckets cumulative and
// non-decreasing, an explicit +Inf bucket present, and _count equal to the
// +Inf bucket. The CI obs smoke lane holds a live /metrics scrape of a
// training run to this parser.
func ValidateExposition(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	types := map[string]string{}   // family -> kind
	closed := map[string]bool{}    // family had samples and a new family started
	hists := map[string]*histAcc{} // histogram family -> accumulated checks
	current := ""
	samples, lineNo := 0, 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) (int, error) {
			return 0, fmt.Errorf("exposition line %d: %s (%q)", lineNo, fmt.Sprintf(format, args...), line)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fail("malformed %s comment", fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return fail("TYPE needs a kind")
					}
					kind := fields[3]
					switch kind {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fail("unknown metric kind %q", kind)
					}
					if _, dup := types[fields[2]]; dup {
						return fail("duplicate TYPE for %s", fields[2])
					}
					if closed[fields[2]] {
						return fail("TYPE for %s after its samples", fields[2])
					}
					types[fields[2]] = kind
				}
			}
			continue
		}

		name, labels, val, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		fam := familyOf(name, types)
		if fam != current {
			if closed[fam] {
				return fail("samples of %s are not contiguous", fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		if types[fam] == "histogram" {
			h := hists[fam]
			if h == nil {
				h = &histAcc{buckets: map[string][]bucket{}, counts: map[string]float64{}, sums: map[string]bool{}}
				hists[fam] = h
			}
			if err := h.add(fam, name, labels, val); err != nil {
				return fail("%v", err)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for fam, h := range hists {
		if err := h.check(fam); err != nil {
			return 0, err
		}
	}
	return samples, nil
}

// familyOf maps a sample name to its family: histogram samples carry
// _bucket/_sum/_count suffixes on the declared family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

type bucket struct {
	le  float64
	cum float64
}

type histAcc struct {
	buckets map[string][]bucket // series key (labels minus le) -> buckets
	counts  map[string]float64
	sums    map[string]bool
}

type labelPair struct{ name, value string }

func seriesKey(labels []labelPair, drop string) string {
	kept := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.name != drop {
			kept = append(kept, l.name+"\xfe"+l.value)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, "\xff")
}

func (h *histAcc) add(fam, name string, labels []labelPair, val float64) error {
	key := seriesKey(labels, "le")
	switch name {
	case fam + "_bucket":
		le := ""
		for _, l := range labels {
			if l.name == "le" {
				le = l.value
			}
		}
		if le == "" {
			return fmt.Errorf("%s without le label", name)
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("%s has unparseable le=%q", name, le)
		}
		h.buckets[key] = append(h.buckets[key], bucket{f, val})
	case fam + "_sum":
		h.sums[key] = true
	case fam + "_count":
		h.counts[key] = val
	default:
		return fmt.Errorf("sample %s inside histogram family %s", name, fam)
	}
	return nil
}

func (h *histAcc) check(fam string) error {
	for key, bs := range h.buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("exposition: histogram %s is missing the +Inf bucket", fam)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				return fmt.Errorf("exposition: histogram %s buckets not cumulative (le=%g count %g < le=%g count %g)",
					fam, bs[i].le, bs[i].cum, bs[i-1].le, bs[i-1].cum)
			}
		}
		count, ok := h.counts[key]
		if !ok {
			return fmt.Errorf("exposition: histogram %s is missing _count", fam)
		}
		if count != last.cum {
			return fmt.Errorf("exposition: histogram %s _count %g != +Inf bucket %g", fam, count, last.cum)
		}
		if !h.sums[key] {
			return fmt.Errorf("exposition: histogram %s is missing _sum", fam)
		}
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (string, []labelPair, float64, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []labelPair
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	if !strings.HasPrefix(rest, " ") {
		return "", nil, 0, fmt.Errorf("missing value separator")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want 'value [timestamp]' after name, got %q", rest)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, val, nil
}

// parseLabels parses `name="value",...}` returning the pairs and the text
// after the closing brace.
func parseLabels(s string) ([]labelPair, string, error) {
	var out []labelPair
	for {
		if strings.HasPrefix(s, "}") {
			return out, s[1:], nil
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		name := s[:i]
		if !validLabelName(name) && name != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[i:]
		if !strings.HasPrefix(s, `="`) {
			return nil, "", fmt.Errorf("label %s not followed by =\"", name)
		}
		s = s[2:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", s[1], name)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		out = append(out, labelPair{name, val.String()})
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
		default:
			return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
		}
	}
}
