package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Stage indices for the per-row kernel timers. They mirror the paper's
// hotspot decomposition: S1 builds the Gram matrix, S2 gathers the
// right-hand side, S3 solves. Fused variants do S1 and S2 in one sweep
// that cannot be split, so it is accounted separately as s1+s2.
const (
	StageS1 = iota
	StageS2
	StageS3
	StageS12
	NumStages
)

// StageNames are the label values used for als_train_stage_seconds_total.
var StageNames = [NumStages]string{"s1", "s2", "s3", "s1+s2"}

// StageDur accumulates per-stage wall time inside one worker.
type StageDur [NumStages]time.Duration

// RunMeta identifies a training run for /runinfo and the event log.
type RunMeta struct {
	Program    string    `json:"program,omitempty"`
	Dataset    string    `json:"dataset,omitempty"`
	Rows       int       `json:"rows,omitempty"`
	Cols       int       `json:"cols,omitempty"`
	NNZ        int       `json:"nnz,omitempty"`
	K          int       `json:"k,omitempty"`
	Lambda     float64   `json:"lambda,omitempty"`
	Iterations int       `json:"iterations,omitempty"`
	Variant    string    `json:"variant,omitempty"`
	Mode       string    `json:"mode,omitempty"` // "explicit" or "implicit"
	Workers    int       `json:"workers,omitempty"`
	StartedAt  time.Time `json:"started_at"`
}

// WorkerHalf is one worker's share of one half iteration.
type WorkerHalf struct {
	Worker int     `json:"worker"`
	BusyMS float64 `json:"busy_ms"`
	Chunks int     `json:"chunks"`
	Rows   int     `json:"rows"`
}

// RunEvent is one entry of the structured run-event log: a completed half
// iteration ("half"), a loss measurement ("loss"), a checkpoint I/O
// ("checkpoint"), or a divergence rollback ("rollback"). TMS is the
// event's start offset since the run began.
type RunEvent struct {
	Event      string             `json:"event"`
	TMS        float64            `json:"t_ms"`
	Iter       int                `json:"iter,omitempty"`
	Half       string             `json:"half,omitempty"`
	DurMS      float64            `json:"dur_ms,omitempty"`
	Rows       int                `json:"rows,omitempty"`
	NNZ        int                `json:"nnz,omitempty"`
	RowsPerSec float64            `json:"rows_per_sec,omitempty"`
	StageMS    map[string]float64 `json:"stage_ms,omitempty"`
	Workers    []WorkerHalf       `json:"workers,omitempty"`
	Loss       *float64           `json:"loss,omitempty"`
	Op         string             `json:"op,omitempty"` // checkpoint: "save" or "load"
	Bytes      int64              `json:"bytes,omitempty"`
	Error      string             `json:"error,omitempty"`
}

// TrainRecorder collects the training-run observability stream: per-half
// spans with worker utilization and stage shares, loss history, and
// checkpoint I/O. It is fed by the host training loop (coarse-grained —
// one call per worker per half rendezvous, never per row), optionally
// mirrors everything into a Registry for live /metrics, and exports the
// run as a Chrome trace-event file or a JSONL event log afterwards.
//
// All methods are nil-safe: a nil *TrainRecorder records nothing, so call
// sites can stay unconditional outside the row-update hot loop.
type TrainRecorder struct {
	mu     sync.Mutex
	start  time.Time
	meta   RunMeta
	events []RunEvent

	iter      int // last completed full iteration
	cur       *RunEvent
	curWall   time.Time
	curStage  StageDur
	lastLoss  *float64
	totStage  [NumStages]float64
	ckpts     int
	halves    int
	maxWorker int

	mIteration, mLoss, mRowsPerSec *Vec
	mHalves, mHalfSeconds, mRows   *Vec
	mStageSeconds                  *Vec
	mWorkerBusy, mWorkerIdle       *Vec
	mWorkerChunks, mWorkerRows     *Vec
	mCkptSeconds, mCkptBytes       *Vec
	mCkptOps                       *Vec
}

// NewTrainRecorder starts an empty recorder; the run clock starts now.
func NewTrainRecorder() *TrainRecorder {
	now := time.Now()
	return &TrainRecorder{start: now, meta: RunMeta{StartedAt: now}}
}

// SetMeta records what the caller knows about the run (the command layer:
// program, dataset name, hyperparameters).
func (r *TrainRecorder) SetMeta(program, dataset string, k int, lambda float64, iterations int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.meta.Program, r.meta.Dataset = program, dataset
	r.meta.K, r.meta.Lambda, r.meta.Iterations = k, lambda, iterations
}

// SetShape records what the solver knows about the run (matrix dimensions,
// resolved worker count, code variant and training mode). Called by
// host.Train.
func (r *TrainRecorder) SetShape(rows, cols, nnz, workers int, variant, mode string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.meta.Rows, r.meta.Cols, r.meta.NNZ = rows, cols, nnz
	r.meta.Workers, r.meta.Variant, r.meta.Mode = workers, variant, mode
}

// Register mirrors the recorder into reg as live Prometheus metrics.
func (r *TrainRecorder) Register(reg *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mIteration = reg.Gauge("als_train_iteration", "Last completed full ALS iteration.")
	r.mLoss = reg.Gauge("als_train_loss", "Latest regularized training loss (Eq. 2).")
	r.mRowsPerSec = reg.Gauge("als_train_rows_per_second", "Row-update throughput of the most recent half iteration.", "half")
	r.mHalves = reg.Counter("als_train_halves_total", "Completed half iterations.", "half")
	r.mHalfSeconds = reg.Counter("als_train_half_seconds_total", "Wall time spent in half iterations.", "half")
	r.mRows = reg.Counter("als_train_rows_total", "Row updates performed.", "half")
	r.mStageSeconds = reg.Counter("als_train_stage_seconds_total",
		"Kernel wall time by ALS stage and training mode, summed across workers (the paper's S1/S2/S3 hotspot shares; fused variants report the indivisible sweep as s1+s2).", "stage", "mode")
	r.mWorkerBusy = reg.Counter("als_train_worker_busy_seconds_total", "Per-worker time spent executing half-iteration jobs.", "worker")
	r.mWorkerIdle = reg.Counter("als_train_worker_idle_seconds_total", "Per-worker time parked inside a half iteration while others still ran (imbalance).", "worker")
	r.mWorkerChunks = reg.Counter("als_train_worker_chunks_total", "Chunks claimed from the shared cursor per worker.", "worker")
	r.mWorkerRows = reg.Counter("als_train_worker_rows_total", "Row updates performed per worker.", "worker")
	r.mCkptSeconds = reg.Counter("als_checkpoint_io_seconds_total", "Time spent in checkpoint I/O.", "op")
	r.mCkptBytes = reg.Counter("als_checkpoint_io_bytes_total", "Bytes moved by checkpoint I/O.", "op")
	r.mCkptOps = reg.Counter("als_checkpoint_io_total", "Checkpoint operations by outcome.", "op", "result")
	reg.Func("als_train_info", "Training-run identity (value is always 1).", Gauge,
		[]string{"program", "dataset", "variant", "mode", "k", "workers"}, func() []Sample {
			r.mu.Lock()
			m := r.meta
			r.mu.Unlock()
			mode := m.Mode
			if mode == "" {
				mode = "explicit"
			}
			return []Sample{{Labels: []string{m.Program, m.Dataset, m.Variant, mode,
				strconv.Itoa(m.K), strconv.Itoa(m.Workers)}, Value: 1}}
		})
}

// BeginHalf opens the span for one half iteration. The worker slots are
// preallocated so WorkerReport only writes into its own index.
func (r *TrainRecorder) BeginHalf(iter int, half string, rows, nnz, workers int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	slots := make([]WorkerHalf, workers)
	for w := range slots {
		slots[w].Worker = w
	}
	r.cur = &RunEvent{Event: "half", TMS: msSince(r.start, now), Iter: iter, Half: half,
		Rows: rows, NNZ: nnz, Workers: slots}
	r.curWall = now
	r.curStage = StageDur{}
	if workers > r.maxWorker {
		r.maxWorker = workers
	}
}

// WorkerReport records one worker's share of the open half: its busy wall
// time inside the job, chunk claims, rows updated, and per-stage kernel
// time. Reports accumulate — a worker that drains several copies of the
// broadcast job (the pool channel does not guarantee one copy per worker)
// reports once per copy.
func (r *TrainRecorder) WorkerReport(worker int, busy time.Duration, chunks, rows int, stage StageDur) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil || worker < 0 || worker >= len(r.cur.Workers) {
		return
	}
	wh := &r.cur.Workers[worker]
	wh.BusyMS += ms(busy)
	wh.Chunks += chunks
	wh.Rows += rows
	for s := range stage {
		r.curStage[s] += stage[s]
	}
}

// EndHalf closes the open half span, derives throughput and stage shares,
// and publishes the live metrics.
func (r *TrainRecorder) EndHalf() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := r.cur
	if ev == nil {
		return
	}
	r.cur = nil
	dur := time.Since(r.curWall)
	ev.DurMS = ms(dur)
	if secs := dur.Seconds(); secs > 0 {
		ev.RowsPerSec = float64(ev.Rows) / secs
	}
	stageMS := make(map[string]float64)
	for s, d := range r.curStage {
		if d > 0 {
			stageMS[StageNames[s]] = ms(d)
			r.totStage[s] += d.Seconds()
		}
	}
	if len(stageMS) > 0 {
		ev.StageMS = stageMS
	}
	r.events = append(r.events, *ev)
	r.halves++

	if r.mHalves == nil {
		return
	}
	r.mHalves.With(ev.Half).Inc()
	r.mHalfSeconds.With(ev.Half).Add(dur.Seconds())
	r.mRows.With(ev.Half).Add(float64(ev.Rows))
	r.mRowsPerSec.With(ev.Half).Set(ev.RowsPerSec)
	mode := r.meta.Mode
	if mode == "" {
		mode = "explicit"
	}
	for s, d := range r.curStage {
		if d > 0 {
			r.mStageSeconds.With(StageNames[s], mode).Add(d.Seconds())
		}
	}
	for _, wh := range ev.Workers {
		lbl := strconv.Itoa(wh.Worker)
		busy := wh.BusyMS / 1e3
		r.mWorkerBusy.With(lbl).Add(busy)
		if idle := dur.Seconds() - busy; idle > 0 {
			r.mWorkerIdle.With(lbl).Add(idle)
		}
		r.mWorkerChunks.With(lbl).Add(float64(wh.Chunks))
		r.mWorkerRows.With(lbl).Add(float64(wh.Rows))
	}
}

// IterDone marks one full ALS iteration complete.
func (r *TrainRecorder) IterDone(iter int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.iter = iter
	if r.mIteration != nil {
		r.mIteration.Set(float64(iter))
	}
}

// RecordLoss logs one loss measurement.
func (r *TrainRecorder) RecordLoss(iter int, half string, loss float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := loss
	r.lastLoss = &l
	r.events = append(r.events, RunEvent{Event: "loss", TMS: msSince(r.start, time.Now()),
		Iter: iter, Half: half, Loss: &l})
	if r.mLoss != nil {
		r.mLoss.Set(loss)
	}
}

// RecordRollback logs one divergence rollback: the iteration whose loss
// (or factors) tripped the watchdog and the offending loss value.
func (r *TrainRecorder) RecordRollback(iter int, loss float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := loss
	r.events = append(r.events, RunEvent{Event: "rollback", TMS: msSince(r.start, time.Now()),
		Iter: iter, Loss: &l})
}

// RecordCheckpoint logs one checkpoint save or load, its duration, the
// encoded byte count, and whether it failed.
func (r *TrainRecorder) RecordCheckpoint(op string, d time.Duration, bytes int64, err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := RunEvent{Event: "checkpoint", TMS: msSince(r.start, time.Now().Add(-d)),
		DurMS: ms(d), Op: op, Bytes: bytes}
	if err != nil {
		ev.Error = err.Error()
	}
	r.events = append(r.events, ev)
	r.ckpts++
	if r.mCkptSeconds != nil {
		r.mCkptSeconds.With(op).Add(d.Seconds())
		r.mCkptBytes.With(op).Add(float64(bytes))
		result := "ok"
		if err != nil {
			result = "error"
		}
		r.mCkptOps.With(op, result).Inc()
	}
}

// TrainRunInfo is the /runinfo payload: run identity, progress, cumulative
// stage totals and the tail of the event log.
type TrainRunInfo struct {
	Meta          RunMeta            `json:"meta"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Iteration     int                `json:"iteration"`
	Halves        int                `json:"halves"`
	Checkpoints   int                `json:"checkpoints"`
	LastLoss      *float64           `json:"last_loss,omitempty"`
	StageSeconds  map[string]float64 `json:"stage_seconds_total,omitempty"`
	RecentEvents  []RunEvent         `json:"recent_events,omitempty"`
}

// runinfoTail bounds the /runinfo payload on long runs.
const runinfoTail = 100

// RunInfo snapshots the run for the /runinfo endpoint.
func (r *TrainRecorder) RunInfo() TrainRunInfo {
	if r == nil {
		return TrainRunInfo{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	info := TrainRunInfo{
		Meta:          r.meta,
		UptimeSeconds: time.Since(r.start).Seconds(),
		Iteration:     r.iter,
		Halves:        r.halves,
		Checkpoints:   r.ckpts,
		LastLoss:      r.lastLoss,
	}
	stage := make(map[string]float64)
	for s, secs := range r.totStage {
		if secs > 0 {
			stage[StageNames[s]] = secs
		}
	}
	if len(stage) > 0 {
		info.StageSeconds = stage
	}
	tail := r.events
	if len(tail) > runinfoTail {
		tail = tail[len(tail)-runinfoTail:]
	}
	info.RecentEvents = append([]RunEvent(nil), tail...)
	return info
}

// WriteJSONL writes the structured run-event log: a meta line followed by
// one JSON object per recorded event, in time order.
func (r *TrainRecorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	meta := r.meta
	events := append([]RunEvent(nil), r.events...)
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Event string  `json:"event"`
		Meta  RunMeta `json:"meta"`
	}{"meta", meta}); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace-event (the Trace Event Format's JSON
// object form, loadable in chrome://tracing and Perfetto).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace thread IDs: the training loop, per-worker lanes, checkpoint I/O.
const (
	traceTIDLoop       = 0
	traceTIDCheckpoint = 999
	traceTIDWorkerBase = 1
)

// WriteChromeTrace exports the run as a Chrome trace-event JSON file.
// Half iterations are complete ("X") spans on the train-loop lane with the
// stage shares as args; each worker's busy time is a span on its own lane
// (aggregate per half, anchored at the half's start); loss is a counter
// ("C") track; checkpoint I/O spans ride a dedicated lane.
func (r *TrainRecorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	meta := r.meta
	events := append([]RunEvent(nil), r.events...)
	maxWorker := r.maxWorker
	r.mu.Unlock()

	program := meta.Program
	if program == "" {
		program = "als-train"
	}
	tes := []traceEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": program}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: traceTIDLoop, Args: map[string]any{"name": "train-loop"}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: traceTIDCheckpoint, Args: map[string]any{"name": "checkpoint-io"}},
	}
	for wk := 0; wk < maxWorker; wk++ {
		tes = append(tes, traceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: traceTIDWorkerBase + wk,
			Args: map[string]any{"name": fmt.Sprintf("worker-%d", wk)}})
	}
	for _, ev := range events {
		ts := ev.TMS * 1e3
		switch ev.Event {
		case "half":
			args := map[string]any{"iter": ev.Iter, "rows": ev.Rows, "nnz": ev.NNZ,
				"rows_per_sec": ev.RowsPerSec}
			for k, v := range ev.StageMS {
				args["stage_ms/"+k] = v
			}
			tes = append(tes, traceEvent{Name: fmt.Sprintf("iter%d/%s", ev.Iter, ev.Half),
				Cat: "half", Ph: "X", TS: ts, Dur: ev.DurMS * 1e3, PID: 1, TID: traceTIDLoop, Args: args})
			for _, wh := range ev.Workers {
				tes = append(tes, traceEvent{Name: "busy", Cat: "worker", Ph: "X", TS: ts,
					Dur: wh.BusyMS * 1e3, PID: 1, TID: traceTIDWorkerBase + wh.Worker,
					Args: map[string]any{"chunks": wh.Chunks, "rows": wh.Rows}})
			}
		case "loss":
			if ev.Loss != nil {
				tes = append(tes, traceEvent{Name: "loss", Ph: "C", TS: ts, PID: 1, TID: traceTIDLoop,
					Args: map[string]any{"loss": *ev.Loss}})
			}
		case "rollback":
			args := map[string]any{"iter": ev.Iter}
			if ev.Loss != nil {
				args["loss"] = *ev.Loss
			}
			tes = append(tes, traceEvent{Name: "rollback", Cat: "guard", Ph: "i", TS: ts,
				PID: 1, TID: traceTIDLoop, Args: args})
		case "checkpoint":
			args := map[string]any{"bytes": ev.Bytes}
			if ev.Error != "" {
				args["error"] = ev.Error
			}
			tes = append(tes, traceEvent{Name: ev.Op, Cat: "checkpoint", Ph: "X", TS: ts,
				Dur: ev.DurMS * 1e3, PID: 1, TID: traceTIDCheckpoint, Args: args})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{tes, "ms"})
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func msSince(start, t time.Time) float64 { return ms(t.Sub(start)) }
