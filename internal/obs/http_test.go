package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	rec := NewTrainRecorder()
	reg := NewRegistry()
	rec.Register(reg)
	RegisterProcessMetrics(reg)
	driveRecorder(rec)

	d, err := StartDebug("127.0.0.1:0", reg, func() any { return rec.RunInfo() })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if ctype != "text/plain; version=0.0.4" {
		t.Errorf("metrics content type = %q", ctype)
	}
	if _, err := ValidateExposition(io.NopCloser(readerOf(body))); err != nil {
		t.Errorf("metrics do not validate: %v", err)
	}

	body, ctype = get("/runinfo")
	if ctype != "application/json" {
		t.Errorf("runinfo content type = %q", ctype)
	}
	var info TrainRunInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("runinfo is not JSON: %v", err)
	}
	if info.Halves != 2 {
		t.Errorf("runinfo halves = %d, want 2", info.Halves)
	}

	get("/debug/pprof/cmdline")
	get("/debug/pprof/heap?debug=1")
}

// TestDebugMuxProbes drives /healthz and /readyz through httptest: an
// unset probe answers 200, a failing probe answers 503 with the reason, and
// a probe flipping healthy is reflected on the next request.
func TestDebugMuxProbes(t *testing.T) {
	var mu sync.Mutex
	readyErr := errors.New("no model installed")
	mux := DebugMux(DebugConfig{
		Registry: NewRegistry(),
		Ready: func() error {
			mu.Lock()
			defer mu.Unlock()
			return readyErr
		},
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	probe := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// No Live probe configured: liveness is unconditionally OK.
	if code, body := probe("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// The readiness probe fails: 503 carrying the reason.
	if code, body := probe("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no model installed") {
		t.Fatalf("/readyz = %d %q, want 503 with reason", code, body)
	}
	mu.Lock()
	readyErr = nil
	mu.Unlock()
	if code, body := probe("/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz after recovery = %d %q", code, body)
	}
	// The rest of the mux serves alongside the probes.
	if code, _ := probe("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
}

// TestDebugMuxLiveProbe: a failing liveness probe turns /healthz into 503.
func TestDebugMuxLiveProbe(t *testing.T) {
	mux := DebugMux(DebugConfig{Live: func() error { return errors.New("deadlocked") }})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "deadlocked") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
}

// TestDebugMuxTraceMounts: the optional trace handlers mount only when
// configured, and the mux 404s the routes otherwise.
func TestDebugMuxTraceMounts(t *testing.T) {
	status := func(mux http.Handler, path string) int {
		t.Helper()
		ts := httptest.NewServer(mux)
		defer ts.Close()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	bare := DebugMux(DebugConfig{})
	if code := status(bare, "/debug/traces"); code != http.StatusNotFound {
		t.Errorf("unconfigured /debug/traces = %d, want 404", code)
	}
	marker := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}"))
	})
	wired := DebugMux(DebugConfig{Traces: marker, Slowest: marker})
	if code := status(wired, "/debug/traces"); code != http.StatusOK {
		t.Errorf("/debug/traces = %d, want 200", code)
	}
	if code := status(wired, "/debug/slowest"); code != http.StatusOK {
		t.Errorf("/debug/slowest = %d, want 200", code)
	}
}

func readerOf(s string) io.Reader { return &stringReader{s: s} }

type stringReader struct{ s string }

func (r *stringReader) Read(p []byte) (int, error) {
	if r.s == "" {
		return 0, io.EOF
	}
	n := copy(p, r.s)
	r.s = r.s[n:]
	return n, nil
}
