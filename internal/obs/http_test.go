package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	rec := NewTrainRecorder()
	reg := NewRegistry()
	rec.Register(reg)
	RegisterProcessMetrics(reg)
	driveRecorder(rec)

	d, err := StartDebug("127.0.0.1:0", reg, func() any { return rec.RunInfo() })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if ctype != "text/plain; version=0.0.4" {
		t.Errorf("metrics content type = %q", ctype)
	}
	if _, err := ValidateExposition(io.NopCloser(readerOf(body))); err != nil {
		t.Errorf("metrics do not validate: %v", err)
	}

	body, ctype = get("/runinfo")
	if ctype != "application/json" {
		t.Errorf("runinfo content type = %q", ctype)
	}
	var info TrainRunInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("runinfo is not JSON: %v", err)
	}
	if info.Halves != 2 {
		t.Errorf("runinfo halves = %d, want 2", info.Halves)
	}

	get("/debug/pprof/cmdline")
	get("/debug/pprof/heap?debug=1")
}

func readerOf(s string) io.Reader { return &stringReader{s: s} }

type stringReader struct{ s string }

func (r *stringReader) Read(p []byte) (int, error) {
	if r.s == "" {
		return 0, io.EOF
	}
	n := copy(p, r.s)
	r.s = r.s[n:]
	return n, nil
}
