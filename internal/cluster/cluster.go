// Package cluster models distributed ALS on a commodity cluster, the
// approach of the paper's related work (GraphLab, Spark MLlib) that its
// single-node accelerator story argues against: "distributing [the] matrix
// on multiple machines ... results in heavy cross-node traffic and pretty
// high network bandwidth" (Sec. VI).
//
// The model follows Spark MLlib's partial-replication scheme: ratings are
// row-partitioned across nodes; before each half-iteration every node
// receives the subset of fixed-factor rows its partition references (the
// "partial replication"), and after it the updated factor shards are
// exchanged. Compute uses the host cost of a multicore worker per node;
// communication pays per-node bandwidth and per-message latency over a
// shared switch. The arithmetic is real (factors match the single-node
// solver bit-for-bit), so the package doubles as a correct distributed ALS
// implementation with a simulated clock.
package cluster

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// Network describes the interconnect.
type Network struct {
	GbitPerSec float64 // per-node NIC bandwidth (e.g. 10 for 10GbE)
	LatencySec float64 // per-message latency (switch + stack)
}

// TenGbE is a typical 2016-era cluster interconnect.
func TenGbE() Network { return Network{GbitPerSec: 10, LatencySec: 150e-6} }

// GigE is the commodity interconnect GraphLab-era clusters often had.
func GigE() Network { return Network{GbitPerSec: 1, LatencySec: 200e-6} }

// Config describes one distributed run.
type Config struct {
	Nodes      int
	Network    Network
	NodeDevice *device.Device // per-node compute model; nil = Xeon E5-2670
	K          int
	Lambda     float32
	Iterations int
	Seed       int64
}

func (c *Config) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.NodeDevice == nil {
		c.NodeDevice = device.XeonE52670()
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Network.GbitPerSec <= 0 {
		c.Network = TenGbE()
	}
}

// Result is a simulated distributed training run.
type Result struct {
	X, Y *linalg.Dense
	// ComputeSeconds: summed per-iteration makespans (slowest node).
	ComputeSeconds float64
	// NetworkSeconds: replication + shard-exchange time.
	NetworkSeconds float64
	// ReplicationBytes: total fixed-factor bytes shipped (the related
	// work's "heavy cross-node traffic").
	ReplicationBytes int64
}

// Seconds is the simulated end-to-end time.
func (r *Result) Seconds() float64 { return r.ComputeSeconds + r.NetworkSeconds }

// Train runs distributed ALS. Factors are identical to a single-node run.
func Train(mx *sparse.Matrix, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("cluster: empty rating matrix")
	}
	m, n := mx.Rows(), mx.Cols()
	x := linalg.NewDense(m, cfg.K)
	y := host.InitialY(n, cfg.K, cfg.Seed)
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	res := &Result{X: x, Y: y}
	for it := 0; it < cfg.Iterations; it++ {
		if err := halfIteration(mx.R, y, x, cfg, res); err != nil {
			return nil, fmt.Errorf("cluster: iteration %d (X): %w", it+1, err)
		}
		if err := halfIteration(rt, x, y, cfg, res); err != nil {
			return nil, fmt.Errorf("cluster: iteration %d (Y): %w", it+1, err)
		}
	}
	return res, nil
}

// halfIteration updates `out` from `fixed` over the rows of r across the
// nodes, accounting compute and communication.
func halfIteration(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config, res *Result) error {
	nodes := cfg.Nodes
	bytesPerRow := int64(cfg.K)*4 + 8 // factor row + routing key
	// Bulk-synchronous phases: replicate, compute, exchange. Each phase's
	// time is the slowest node's (transfers overlap across NICs; compute
	// overlaps across nodes).
	var computeMax, netMax float64

	for node := 0; node < nodes; node++ {
		lo := node * r.NumRows / nodes
		hi := (node + 1) * r.NumRows / nodes
		if lo == hi {
			continue
		}
		// Partial replication: the distinct fixed rows this partition
		// references must be shipped to the node. A single node holds all
		// data locally and pays nothing.
		if nodes > 1 {
			needed := distinctCols(r, lo, hi)
			repl := int64(needed) * bytesPerRow
			res.ReplicationBytes += repl
			net := float64(repl)/(cfg.Network.GbitPerSec*1e9/8) + cfg.Network.LatencySec
			// Updated shard flows back.
			net += float64(int64(hi-lo)*bytesPerRow)/(cfg.Network.GbitPerSec*1e9/8) + cfg.Network.LatencySec
			if net > netMax {
				netMax = net
			}
		}

		// Node-local compute via the per-node device model.
		view := shardView(r, lo, hi)
		shardOut := linalg.NewDenseFrom(hi-lo, cfg.K, out.Data[lo*cfg.K:hi*cfg.K])
		rep, err := kernels.UpdateSide(view, fixed, shardOut, kernels.Config{
			Device: cfg.NodeDevice,
			Spec:   kernels.Spec{S1Local: true, S2Local: true},
			K:      cfg.K, Lambda: cfg.Lambda,
		})
		if err != nil {
			return err
		}
		if rep.Seconds > computeMax {
			computeMax = rep.Seconds
		}
	}
	res.ComputeSeconds += computeMax
	res.NetworkSeconds += netMax
	return nil
}

// AllGatherBytes predicts the coordinator-side wire traffic of the real
// data-parallel trainer (internal/shard): a star all-gather in which each
// of `workers` processes sends its factor shard up and receives the full
// side back, for both halves of every iteration — (workers+1)·(m+n)·k·4
// payload bytes per iteration. Each factor frame adds a 26-byte wire
// header (length prefix, kind byte, iteration/range descriptor); the
// one-time hello and config frames are a few hundred bytes and ignored.
// The cross-validation test in internal/shard holds the trainer's measured
// als_dist_broadcast_bytes_total to within a few percent of this figure,
// and checks the simulator's ReplicationBytes stays within 2x of the real
// measurement for matched problem shapes.
func AllGatherBytes(users, items, k, workers, iterations int) int64 {
	const factorFrame = 26 // 8-byte length + kind byte + 17-byte factor header
	rows := int64(users) + int64(items)
	perIter := (int64(workers)+1)*rows*int64(k)*4 + int64(4*workers*factorFrame)
	return int64(iterations) * perIter
}

// distinctCols counts the distinct column indices referenced by rows
// [lo, hi) — the partial-replication working set.
func distinctCols(r *sparse.CSR, lo, hi int) int {
	seen := make(map[int32]struct{})
	for u := lo; u < hi; u++ {
		cols, _ := r.Row(u)
		for _, c := range cols {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// shardView builds a zero-copy CSR view of rows [lo, hi).
func shardView(r *sparse.CSR, lo, hi int) *sparse.CSR {
	return r.RowRange(lo, hi)
}
