package cluster

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

func clusterMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.Netflix.ScaledForBench(0.002).Generate(41).Matrix
}

// TestDistributedMatchesSingleNode: partitioning must not change the math.
func TestDistributedMatchesSingleNode(t *testing.T) {
	mx := clusterMatrix(t)
	single, err := kernels.Train(mx, kernels.Config{
		Device: device.XeonE52670(), Spec: kernels.Spec{S1Local: true, S2Local: true},
		K: 10, Lambda: 0.1, Iterations: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 3, 8} {
		res, err := Train(mx, Config{Nodes: nodes, K: 10, Lambda: 0.1, Iterations: 2, Seed: 7})
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if d := linalg.MaxAbsDiff(single.X, res.X); d != 0 {
			t.Fatalf("%d nodes: X differs by %g", nodes, d)
		}
		if d := linalg.MaxAbsDiff(single.Y, res.Y); d != 0 {
			t.Fatalf("%d nodes: Y differs by %g", nodes, d)
		}
	}
}

// TestReplicationTrafficGrows: the related-work claim — partial replication
// ships (nearly) the whole fixed factor to every node, so traffic grows
// with the node count.
func TestReplicationTrafficGrows(t *testing.T) {
	mx := clusterMatrix(t)
	run := func(nodes int) *Result {
		res, err := Train(mx, Config{Nodes: nodes, K: 10, Lambda: 0.1, Iterations: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r2, r8 := run(2), run(8)
	if !(r8.ReplicationBytes > r2.ReplicationBytes) {
		t.Fatalf("replication did not grow: %d bytes on 8 nodes vs %d on 2",
			r8.ReplicationBytes, r2.ReplicationBytes)
	}
	if !(r8.NetworkSeconds < r2.NetworkSeconds*8) {
		t.Fatalf("per-node overlap missing: %g vs %g", r8.NetworkSeconds, r2.NetworkSeconds)
	}
}

// TestGigEWorseThanTenGbE: the interconnect matters.
func TestGigEWorseThanTenGbE(t *testing.T) {
	mx := clusterMatrix(t)
	// k=64 makes the factor rows large enough that bandwidth (not
	// per-message latency) dominates the network term.
	slow, err := Train(mx, Config{Nodes: 4, Network: GigE(), K: 64, Lambda: 0.1, Iterations: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Train(mx, Config{Nodes: 4, Network: TenGbE(), K: 64, Lambda: 0.1, Iterations: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.NetworkSeconds > fast.NetworkSeconds*4) {
		t.Fatalf("GigE (%g) not much slower than 10GbE (%g)", slow.NetworkSeconds, fast.NetworkSeconds)
	}
}

// TestHeavyCrossNodeTraffic: the related-work claim the paper's single-node
// design leans on — every iteration re-ships factor rows, so on a commodity
// interconnect with a non-trivial k the network takes a meaningful share of
// the runtime, and scaling out inflates total traffic super-linearly
// relative to the factor data itself.
func TestHeavyCrossNodeTraffic(t *testing.T) {
	mx := clusterMatrix(t)
	res, err := Train(mx, Config{Nodes: 8, Network: GigE(), K: 64, Lambda: 0.1, Iterations: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	share := res.NetworkSeconds / res.Seconds()
	if share < 0.05 {
		t.Fatalf("network share %.1f%% too small to exercise the claim", share*100)
	}
	// The replicated bytes must exceed the factor matrices themselves many
	// times over (they are re-shipped every half-iteration to many nodes).
	factorBytes := int64((mx.Rows() + mx.Cols()) * 64 * 4)
	if res.ReplicationBytes < 4*factorBytes {
		t.Fatalf("replication %d bytes, factor data %d — traffic not heavy", res.ReplicationBytes, factorBytes)
	}
}

func TestEmptyRejected(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(mx, Config{Nodes: 2}); err == nil {
		t.Fatal("accepted empty matrix")
	}
}
