package rtrace

import (
	"sync"
	"time"
)

// ring is a fixed-capacity overwrite-oldest buffer of finished spans. The
// tracer counts overwrites into als_trace_spans_dropped_total, so a scrape
// cadence too slow for the traffic is visible rather than silent.
type ring struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int  // index the next span lands in
	wrap bool // buf has wrapped at least once
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]SpanRecord, capacity)}
}

// push appends spans, returning how many old spans were overwritten.
func (r *ring) push(spans []SpanRecord) (dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range spans {
		if r.wrap {
			dropped++
		}
		r.buf[r.next] = s
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
			r.wrap = true
		}
	}
	return dropped
}

// snapshot copies the buffered spans, oldest first.
func (r *ring) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrap {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// SlowTrace is one retained trace in the flight recorder: the root's
// identity plus the full per-hop breakdown.
type SlowTrace struct {
	Trace    TraceID
	Endpoint string // the root span's name
	Start    time.Time
	Dur      time.Duration
	Spans    []SpanRecord
}

// flight is the tail-based recorder: per endpoint (root span name) it keeps
// the n slowest finished traces regardless of head sampling — the requests
// worth explaining are exactly the ones that must never be dropped.
type flight struct {
	mu sync.Mutex
	n  int
	by map[string][]SlowTrace // sorted slowest-first
}

func newFlight(n int) *flight {
	return &flight{n: n, by: make(map[string][]SlowTrace)}
}

func (f *flight) record(root SpanRecord, spans []SpanRecord) {
	st := SlowTrace{Trace: root.Trace, Endpoint: root.Name, Start: root.Start, Dur: root.Dur, Spans: spans}
	f.mu.Lock()
	defer f.mu.Unlock()
	lst := f.by[root.Name]
	if len(lst) == f.n && st.Dur <= lst[len(lst)-1].Dur {
		return
	}
	// Insertion sort into the short slowest-first list.
	pos := len(lst)
	for pos > 0 && lst[pos-1].Dur < st.Dur {
		pos--
	}
	lst = append(lst, SlowTrace{})
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = st
	if len(lst) > f.n {
		lst = lst[:f.n]
	}
	f.by[root.Name] = lst
}

// Slowest returns the flight recorder's contents: endpoint → slowest-first
// retained traces. Nil when the recorder is disabled.
func (t *Tracer) Slowest() map[string][]SlowTrace {
	if t == nil || t.flight == nil {
		return nil
	}
	t.flight.mu.Lock()
	defer t.flight.mu.Unlock()
	out := make(map[string][]SlowTrace, len(t.flight.by))
	for ep, lst := range t.flight.by {
		out[ep] = append([]SlowTrace(nil), lst...)
	}
	return out
}
