package rtrace

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock hands out strictly increasing instants so span durations and
// flight-recorder ordering are deterministic.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTestTracer(cfg Config) (*Tracer, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	if cfg.Now == nil {
		cfg.Now = clk.now
	}
	if cfg.Sample == 0 {
		cfg.Sample = 1
	}
	return New(cfg), clk
}

func TestSpanTree(t *testing.T) {
	tr, _ := newTestTracer(Config{Process: "test"})
	ctx, root := tr.StartRequest(context.Background(), "recommend", SpanContext{})
	if root == nil {
		t.Fatal("sampled root is nil")
	}
	cctx, child := StartChild(ctx, "hop")
	if child == nil {
		t.Fatal("child is nil")
	}
	_, grand := StartChild(cctx, "scan")
	grand.SetAttr("precision", "i8")
	grand.End()
	child.End()
	root.SetAttr("code", "200")
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Children publish as they end; root last.
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootRec, hop, scan := byName["recommend"], byName["hop"], byName["scan"]
	if rootRec.Trace == 0 || hop.Trace != rootRec.Trace || scan.Trace != rootRec.Trace {
		t.Fatalf("trace IDs differ: %v %v %v", rootRec.Trace, hop.Trace, scan.Trace)
	}
	if rootRec.Parent != 0 {
		t.Errorf("root parent = %v, want 0", rootRec.Parent)
	}
	if hop.Parent != rootRec.ID {
		t.Errorf("hop parent = %v, want root %v", hop.Parent, rootRec.ID)
	}
	if scan.Parent != hop.ID {
		t.Errorf("scan parent = %v, want hop %v", scan.Parent, hop.ID)
	}
	if len(scan.Attrs) != 1 || scan.Attrs[0] != (Attr{"precision", "i8"}) {
		t.Errorf("scan attrs = %v", scan.Attrs)
	}
	// Child envelopes fit inside the root's.
	rootEnd := rootRec.Start.Add(rootRec.Dur)
	for _, s := range []SpanRecord{hop, scan} {
		if s.Start.Before(rootRec.Start) || s.Start.Add(s.Dur).After(rootEnd) {
			t.Errorf("span %q [%v +%v] outside root envelope [%v +%v]",
				s.Name, s.Start, s.Dur, rootRec.Start, rootRec.Dur)
		}
	}
	if rec, dropped := tr.SpanCount(); rec != 3 || dropped != 0 {
		t.Errorf("counts = (%d, %d), want (3, 0)", rec, dropped)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Sample: 0})
	if _, s := tr.StartRequest(context.Background(), "r", SpanContext{}); s != nil {
		t.Error("sample=0 local root was sampled")
	}
	// A sampled remote context overrides local head sampling.
	remote := SpanContext{Trace: 7, Span: 9, Sampled: true}
	if _, s := tr.StartRequest(context.Background(), "r", remote); s == nil {
		t.Error("sampled remote context was not continued")
	} else if s.Context().Trace != 7 {
		t.Errorf("trace = %v, want 7", s.Context().Trace)
	}
	// An unsampled remote context suppresses tracing even at sample=1.
	tr1 := New(Config{Sample: 1})
	unsampled := SpanContext{Trace: 7, Span: 9, Sampled: false}
	if _, s := tr1.StartRequest(context.Background(), "r", unsampled); s != nil {
		t.Error("unsampled remote context was traced")
	}
	// Nil tracer and span are inert.
	var nilTr *Tracer
	ctx, s := nilTr.StartRequest(context.Background(), "r", SpanContext{})
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	s.SetAttr("k", "v")
	s.End()
	if _, c := StartChild(ctx, "child"); c != nil {
		t.Error("child of inactive context is non-nil")
	}
}

// TestDisabledTracingAllocs pins the zero-cost contract: with no active
// span, StartChild and the nil-span methods perform no heap allocations.
func TestDisabledTracingAllocs(t *testing.T) {
	ctx := context.Background()
	h := http.Header{}
	n := testing.AllocsPerRun(200, func() {
		_, s := StartChild(ctx, "scan")
		s.SetAttr("precision", "i8")
		Inject(h, s.Context())
		s.End()
	})
	if n != 0 {
		t.Errorf("disabled-tracing path allocates %v/op, want 0", n)
	}
	var tr *Tracer
	n = testing.AllocsPerRun(200, func() {
		_, s := tr.StartRequest(ctx, "recommend", SpanContext{})
		s.End()
	})
	if n != 0 {
		t.Errorf("nil-tracer StartRequest allocates %v/op, want 0", n)
	}
}

func TestRingEviction(t *testing.T) {
	tr, _ := newTestTracer(Config{Capacity: 4, Slowest: -1})
	for i := 1; i <= 6; i++ {
		_, s := tr.StartRequest(context.Background(), fmt.Sprintf("r%d", i), SpanContext{})
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, want := range []string{"r3", "r4", "r5", "r6"} {
		if spans[i].Name != want {
			t.Errorf("ring[%d] = %q, want %q (oldest-first order)", i, spans[i].Name, want)
		}
	}
	if rec, dropped := tr.SpanCount(); rec != 6 || dropped != 2 {
		t.Errorf("counts = (%d, %d), want (6, 2)", rec, dropped)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeef01020304, Span: 0x0a0b0c0d0e0f1011, Sampled: true}
	h := http.Header{}
	Inject(h, sc)
	v := h.Get(TraceparentHeader)
	if want := "00-0000000000000000deadbeef01020304-0a0b0c0d0e0f1011-01"; v != want {
		t.Fatalf("traceparent = %q, want %q", v, want)
	}
	if got := Extract(h); got != sc {
		t.Fatalf("inject→extract: got %+v, want %+v", got, sc)
	}
	// Unsampled flag round-trips too.
	sc.Sampled = false
	Inject(h, sc)
	if got := Extract(h); got != sc {
		t.Fatalf("unsampled round trip: got %+v, want %+v", got, sc)
	}
	// Malformed values are rejected, not mis-parsed.
	for _, bad := range []string{
		"", "00", "zz-0000000000000000deadbeef01020304-0a0b0c0d0e0f1011-01",
		"00-0000000000000000deadbeef0102030g-0a0b0c0d0e0f1011-01",
		"00-0000000000000000deadbeef01020304-0a0b0c0d0e0f10-01",
		strings.Repeat("0", 55),
	} {
		if got := ParseTraceparent(bad); got.Valid() {
			t.Errorf("ParseTraceparent(%q) = %+v, want invalid", bad, got)
		}
	}
	// Binary form.
	b := sc.AppendBinary(nil)
	if len(b) != BinaryContextLen {
		t.Fatalf("binary context is %d bytes, want %d", len(b), BinaryContextLen)
	}
	got, err := ContextFromBinary(b)
	if err != nil || got != sc {
		t.Fatalf("binary round trip: got %+v err %v", got, err)
	}
	if _, err := ContextFromBinary(b[:5]); err == nil {
		t.Error("truncated binary context accepted")
	}
}

func TestEncodeDecodeSpans(t *testing.T) {
	in := []SpanRecord{
		{Trace: 1, ID: 2, Parent: 0, Name: "root", Start: time.Unix(100, 250), Dur: 5 * time.Millisecond},
		{Trace: 1, ID: 3, Parent: 2, Name: "iter1/x compute", Start: time.Unix(100, 500),
			Dur: time.Millisecond, Attrs: []Attr{{"worker", "0"}, {"half", "x"}}},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent || a.Name != b.Name ||
			!a.Start.Equal(b.Start) || a.Dur != b.Dur || len(a.Attrs) != len(b.Attrs) {
			t.Errorf("span %d: got %+v, want %+v", i, b, a)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Errorf("span %d attr %d: got %+v, want %+v", i, j, b.Attrs[j], a.Attrs[j])
			}
		}
	}
	if _, err := DecodeSpans(EncodeSpans(in)[:20]); err == nil {
		t.Error("truncated span payload accepted")
	}
	if got, err := DecodeSpans(EncodeSpans(nil)); err != nil || len(got) != 0 {
		t.Errorf("empty payload: got %v, %v", got, err)
	}
}

func TestFlightRecorder(t *testing.T) {
	tr, _ := newTestTracer(Config{Slowest: 2})
	// Each request is one fake-clock tick except the marked slow ones,
	// which hold extra child spans (each child costs two ticks).
	mk := func(name string, children int) TraceID {
		ctx, root := tr.StartRequest(context.Background(), name, SpanContext{})
		for c := 0; c < children; c++ {
			_, s := StartChild(ctx, fmt.Sprintf("hop%d", c))
			s.End()
		}
		root.End()
		return root.TraceID()
	}
	mk("recommend", 0)
	slow1 := mk("recommend", 3)
	slow2 := mk("recommend", 5)
	mk("recommend", 1)
	mk("foldin", 0)

	byEp := tr.Slowest()
	rec := byEp["recommend"]
	if len(rec) != 2 {
		t.Fatalf("retained %d recommend traces, want 2", len(rec))
	}
	if rec[0].Trace != slow2 || rec[1].Trace != slow1 {
		t.Errorf("slowest-first order: got %v,%v want %v,%v", rec[0].Trace, rec[1].Trace, slow2, slow1)
	}
	if rec[0].Dur < rec[1].Dur {
		t.Errorf("not sorted by duration: %v < %v", rec[0].Dur, rec[1].Dur)
	}
	if len(rec[0].Spans) != 6 { // 5 hops + root
		t.Errorf("slowest trace carries %d spans, want 6", len(rec[0].Spans))
	}
	if len(byEp["foldin"]) != 1 {
		t.Errorf("foldin retained %d traces, want 1", len(byEp["foldin"]))
	}
}

func TestRegisterExposition(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	reg := obs.NewRegistry()
	tr.Register(reg)
	_, s := tr.StartRequest(context.Background(), "r", SpanContext{})
	s.End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{"als_trace_spans_total 1", "als_trace_spans_dropped_total 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
