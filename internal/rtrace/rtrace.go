// Package rtrace is a dependency-free request tracer for the serving and
// training fleet: 64-bit trace/span IDs, parent links, attributes and
// wall-clock timestamps, propagated across processes through a W3C
// traceparent-style HTTP header and a binary context frame in the trainer's
// TCP protocol. Finished traces land in a bounded in-memory ring buffer
// (served as Chrome trace-event JSON at /debug/traces) and a tail-based
// flight recorder that always keeps the N slowest requests per endpoint
// (/debug/slowest), so a slow p99 can be attributed to a specific shard
// hop, cache miss, scan or straggling trainer worker after the fact.
//
// The package is named rtrace (request trace) to avoid colliding with the
// paper-tuner's internal/trace.
//
// Everything is nil-safe: a nil *Tracer starts no spans, every method on a
// nil *Span is a no-op, and StartChild on a context without an active span
// returns nil — so instrumented code paths run unconditionally and cost
// nothing (no allocations, one context lookup) when tracing is off.
package rtrace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TraceID and SpanID are 64-bit identifiers, rendered as 16 hex digits.
// Zero is "absent" in both cases; the generator never produces it.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

func (id TraceID) String() string { return hex16(uint64(id)) }

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex16(uint64(id)) }

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// SpanRecord is a finished span: the immutable form that moves through the
// ring buffer, the flight recorder, the exporters and the trainer's
// frameSpans TCP frame.
type SpanRecord struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a local root with no remote parent
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Span is a live span. The zero of the API is nil: all methods no-op on a
// nil receiver, so callers never guard instrumentation sites.
type Span struct {
	tr   *Tracer
	grp  *group
	rec  SpanRecord
	done bool // guarded by grp.mu
}

// group collects every span of one locally-rooted trace so the whole bundle
// is published atomically when the root ends.
type group struct {
	mu    sync.Mutex
	root  *Span
	spans []SpanRecord
	ended bool
}

// Config sizes a Tracer. The zero value samples nothing.
type Config struct {
	// Sample is the head-sampling probability for new root spans in [0,1].
	// Requests arriving with a sampled remote context are always traced
	// (the upstream made the decision); unsampled remote contexts never are.
	Sample float64
	// Capacity bounds the finished-span ring buffer (default 4096 spans).
	// Overwritten spans count into als_trace_spans_dropped_total.
	Capacity int
	// Slowest is how many slowest traces the flight recorder retains per
	// endpoint (default 8; negative disables the recorder).
	Slowest int
	// Process names this process in exported traces ("alsfront",
	// "alsserve", ...).
	Process string
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Tracer creates spans and owns the ring buffer + flight recorder. Safe for
// concurrent use; a nil *Tracer is a valid always-off tracer.
type Tracer struct {
	cfg     Config
	seed    uint64
	seq     atomic.Uint64
	spans   atomic.Uint64 // finished spans recorded
	dropped atomic.Uint64 // spans evicted from the ring
	ring    *ring
	flight  *flight
}

// New builds a tracer. A Sample of 0 still traces requests whose remote
// context is sampled (a downstream process of a sampling frontend).
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.Slowest == 0 {
		cfg.Slowest = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tracer{
		cfg:  cfg,
		seed: uint64(time.Now().UnixNano()) | 1,
		ring: newRing(cfg.Capacity),
	}
	if cfg.Slowest > 0 {
		t.flight = newFlight(cfg.Slowest)
	}
	return t
}

// nextID draws a non-zero pseudorandom 64-bit ID (splitmix64 over a
// process-unique seed and an atomic counter — lock-free and allocation-free).
func (t *Tracer) nextID() uint64 {
	x := t.seed + t.seq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// sampled draws the head-sampling decision for a new local root.
func (t *Tracer) sampled() bool {
	p := t.cfg.Sample
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	// nextID is uniform over uint64; compare against p's share of the range.
	return float64(t.nextID()>>11)/(1<<53) < p
}

type ctxKey struct{}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Active reports whether ctx carries a live span — the guard for
// instrumentation that would otherwise allocate (span names built with
// fmt.Sprintf, say) on untraced requests.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// StartRequest opens a locally-rooted span for one request or run. When
// remote is valid it continues that trace (the span becomes a child of the
// remote span and inherits its sampling decision); otherwise the head
// sampler decides. A nil tracer or a negative decision returns (ctx, nil)
// without allocating.
func (t *Tracer) StartRequest(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var trace TraceID
	var parent SpanID
	if remote.Valid() {
		if !remote.Sampled {
			return ctx, nil
		}
		trace, parent = remote.Trace, remote.Span
	} else {
		if !t.sampled() {
			return ctx, nil
		}
		trace = TraceID(t.nextID())
	}
	s := &Span{
		tr:  t,
		grp: &group{spans: make([]SpanRecord, 0, 8)},
		rec: SpanRecord{
			Trace:  trace,
			ID:     SpanID(t.nextID()),
			Parent: parent,
			Name:   name,
			Start:  t.cfg.Now(),
		},
	}
	s.grp.root = s
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartChild opens a child of ctx's active span, returning a context that
// carries the child (so grandchildren nest). Without an active span it
// returns (ctx, nil) — one interface assertion, zero allocations.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	t := parent.tr
	s := &Span{
		tr:  t,
		grp: parent.grp,
		rec: SpanRecord{
			Trace:  parent.rec.Trace,
			ID:     SpanID(t.nextID()),
			Parent: parent.rec.ID,
			Name:   name,
			Start:  t.cfg.Now(),
		},
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// Context returns the span's propagation context (for header or binary
// injection into an outbound hop). Zero on nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID, Sampled: true}
}

// TraceID returns the span's trace ID (zero on nil) — for slow-request log
// lines that cross-reference /debug/traces.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// End finishes the span. Ending the trace's local root publishes the whole
// bundle to the ring buffer and the flight recorder. A second End on any
// span is ignored, as is a child ending after its root already published.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := s.tr.cfg.Now().Sub(s.rec.Start)
	g := s.grp
	g.mu.Lock()
	if s.done || g.ended {
		g.mu.Unlock()
		return
	}
	s.done = true
	s.rec.Dur = dur
	g.spans = append(g.spans, s.rec)
	if s != g.root {
		g.mu.Unlock()
		return
	}
	g.ended = true
	spans := g.spans
	g.mu.Unlock()
	s.tr.publish(s.rec, spans)
}

// publish lands a finished trace bundle in the ring and flight recorder.
func (t *Tracer) publish(root SpanRecord, spans []SpanRecord) {
	t.spans.Add(uint64(len(spans)))
	t.dropped.Add(t.ring.push(spans))
	if t.flight != nil {
		t.flight.record(root, spans)
	}
}

// Ingest publishes externally-produced span records — the coordinator calls
// it with the bundles trainer workers ship over frameSpans, so a distributed
// run's per-worker spans are inspectable from the coordinator's
// /debug/traces. No-op on a nil tracer.
func (t *Tracer) Ingest(spans []SpanRecord) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.spans.Add(uint64(len(spans)))
	t.dropped.Add(t.ring.push(spans))
}

// Snapshot returns the ring buffer's finished spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// SpanCount reports (recorded, dropped) span totals.
func (t *Tracer) SpanCount() (recorded, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return t.spans.Load(), t.dropped.Load()
}

// Register adds the tracer's counters to a metrics registry:
// als_trace_spans_total (spans recorded) and als_trace_spans_dropped_total
// (spans evicted from the ring buffer before being scraped).
func (t *Tracer) Register(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.Func("als_trace_spans_total", "Finished trace spans recorded.",
		obs.Counter, nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(t.spans.Load())}}
		})
	reg.Func("als_trace_spans_dropped_total",
		"Trace spans evicted from the in-memory ring buffer.",
		obs.Counter, nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(t.dropped.Load())}}
		})
}
