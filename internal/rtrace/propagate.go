package rtrace

import (
	"encoding/binary"
	"fmt"
	"net/http"
	"time"
)

// TraceparentHeader carries the span context across HTTP hops in the W3C
// trace-context layout: 00-<32 hex trace>-<16 hex span>-<2 hex flags>.
// rtrace IDs are 64-bit, so the trace field is left-padded to the standard
// 128-bit width and only the low 16 hex digits are read back.
const TraceparentHeader = "traceparent"

// SpanContext is the portable identity of a span: what crosses process
// boundaries in an HTTP header or a trainer TCP frame.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Traceparent renders the context as a traceparent header value.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-0000000000000000" + hex16(uint64(sc.Trace)) + "-" + hex16(uint64(sc.Span)) + "-" + flags
}

// Inject writes the context into outbound request headers. Invalid contexts
// write nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
}

// Extract reads the inbound context; a missing or malformed header returns
// the zero (invalid) context.
func Extract(h http.Header) SpanContext {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// ParseTraceparent decodes a traceparent value. Only version 00 with the
// standard field widths is accepted.
func ParseTraceparent(s string) SpanContext {
	// 00-<32>-<16>-<2> → 2+1+32+1+16+1+2 = 55 bytes.
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}
	}
	trace, ok1 := parseHex(s[19:35]) // low 64 bits of the 128-bit field
	span, ok2 := parseHex(s[36:52])
	flags, ok3 := parseHex(s[53:55])
	if !ok1 || !ok2 || !ok3 {
		return SpanContext{}
	}
	return SpanContext{Trace: TraceID(trace), Span: SpanID(span), Sampled: flags&1 == 1}
}

func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// BinaryContextLen is the wire size of a binary span context: 8-byte trace,
// 8-byte span (little-endian), 1 flag byte — the payload of the trainer's
// frameTraceCtx frame.
const BinaryContextLen = 17

// AppendBinary appends the 17-byte binary form.
func (sc SpanContext) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(sc.Trace))
	b = binary.LittleEndian.AppendUint64(b, uint64(sc.Span))
	flags := byte(0)
	if sc.Sampled {
		flags = 1
	}
	return append(b, flags)
}

// ContextFromBinary decodes a 17-byte binary span context.
func ContextFromBinary(b []byte) (SpanContext, error) {
	if len(b) != BinaryContextLen {
		return SpanContext{}, fmt.Errorf("rtrace: binary span context is %d bytes, want %d", len(b), BinaryContextLen)
	}
	return SpanContext{
		Trace:   TraceID(binary.LittleEndian.Uint64(b)),
		Span:    SpanID(binary.LittleEndian.Uint64(b[8:])),
		Sampled: b[16]&1 == 1,
	}, nil
}

// EncodeSpans serializes finished span records for shipping between
// processes (a trainer worker's frameSpans payload): a uvarint count, then
// per span the fixed IDs/timestamps and length-prefixed name and attrs.
func EncodeSpans(spans []SpanRecord) []byte {
	b := binary.AppendUvarint(nil, uint64(len(spans)))
	for _, r := range spans {
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Trace))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Parent))
		b = binary.AppendVarint(b, r.Start.UnixNano())
		b = binary.AppendVarint(b, int64(r.Dur))
		b = appendString(b, r.Name)
		b = binary.AppendUvarint(b, uint64(len(r.Attrs)))
		for _, a := range r.Attrs {
			b = appendString(b, a.Key)
			b = appendString(b, a.Value)
		}
	}
	return b
}

// DecodeSpans reverses EncodeSpans.
func DecodeSpans(b []byte) ([]SpanRecord, error) {
	d := &decoder{b: b}
	n := d.uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("rtrace: implausible span count %d", n)
	}
	spans := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var r SpanRecord
		r.Trace = TraceID(d.u64())
		r.ID = SpanID(d.u64())
		r.Parent = SpanID(d.u64())
		r.Start = time.Unix(0, d.varint())
		r.Dur = time.Duration(d.varint())
		r.Name = d.str()
		na := d.uvarint()
		if na > 1<<16 {
			return nil, fmt.Errorf("rtrace: implausible attr count %d", na)
		}
		for j := uint64(0); j < na; j++ {
			r.Attrs = append(r.Attrs, Attr{Key: d.str(), Value: d.str()})
		}
		if d.err != nil {
			return nil, d.err
		}
		spans = append(spans, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	return spans, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder is a cursor over an encoded span payload; the first malformed
// field latches err and zeroes every later read.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("rtrace: truncated span payload")
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
