package rtrace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestChromeTraceExport(t *testing.T) {
	tr, _ := newTestTracer(Config{Process: "alsfront"})
	ctx, root := tr.StartRequest(context.Background(), "recommend", SpanContext{})
	_, hop := StartChild(ctx, "shard0 /v1/recommend")
	hop.End()
	root.SetAttr("code", "200")
	root.End()

	rec := httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var sawRoot, sawHop, sawProcess bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			sawProcess = true
			if ev.Args["name"] != "alsfront" {
				t.Errorf("process name = %v", ev.Args["name"])
			}
		case ev.Ph == "X" && ev.Name == "recommend":
			sawRoot = true
			if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
				t.Errorf("root args missing IDs: %v", ev.Args)
			}
			if ev.Args["code"] != "200" {
				t.Errorf("root attr code = %v", ev.Args["code"])
			}
			if ev.Dur <= 0 || ev.TS <= 0 {
				t.Errorf("root ts/dur = %v/%v", ev.TS, ev.Dur)
			}
		case ev.Ph == "X" && ev.Name == "shard0 /v1/recommend":
			sawHop = true
			if ev.Args["parent_id"] == "" || ev.Args["parent_id"] == nil {
				t.Errorf("hop has no parent_id: %v", ev.Args)
			}
		}
	}
	if !sawRoot || !sawHop || !sawProcess {
		t.Errorf("events missing: root=%v hop=%v process=%v", sawRoot, sawHop, sawProcess)
	}

	// JSONL: one valid object per line, IDs consistent with the bundle.
	rec = httptest.NewRecorder()
	tr.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=jsonl", nil))
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2:\n%s", len(lines), rec.Body.String())
	}
	for _, ln := range lines {
		var sj spanJSON
		if err := json.Unmarshal([]byte(ln), &sj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if sj.Trace != root.TraceID().String() {
			t.Errorf("line trace = %q, want %q", sj.Trace, root.TraceID())
		}
	}
}

func TestSlowestHandler(t *testing.T) {
	tr, _ := newTestTracer(Config{Slowest: 4})
	ctx, root := tr.StartRequest(context.Background(), "recommend", SpanContext{})
	_, hop := StartChild(ctx, "shard1 /v1/recommend")
	hop.End()
	root.End()

	rec := httptest.NewRecorder()
	tr.SlowestHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowest", nil))
	var out map[string][]slowTraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("slowest is not JSON: %v\n%s", err, rec.Body.String())
	}
	traces := out["recommend"]
	if len(traces) != 1 {
		t.Fatalf("recommend has %d traces, want 1", len(traces))
	}
	if traces[0].TraceID != root.TraceID().String() {
		t.Errorf("trace_id = %q, want %q", traces[0].TraceID, root.TraceID())
	}
	if len(traces[0].Spans) != 2 {
		t.Errorf("breakdown has %d spans, want 2", len(traces[0].Spans))
	}

	// A nil tracer yields nil handlers, which DebugMux leaves unmounted.
	var nilTr *Tracer
	if nilTr.TracesHandler() != nil || nilTr.SlowestHandler() != nil {
		t.Error("nil tracer returned non-nil handlers")
	}
}
