package rtrace

import (
	"encoding/json"
	"io"
	"net/http"
)

// chromeEvent mirrors the Trace Event Format's JSON object form used by
// obs.TrainRecorder, so /debug/traces output loads in chrome://tracing and
// Perfetto exactly like the training-side export.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the ring buffer as Chrome trace-event JSON. Each
// trace gets its own thread lane (named by trace ID) so concurrent requests
// do not interleave; timestamps are absolute wall-clock microseconds, which
// both viewers rebase to the earliest event.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, t.processName(), t.Snapshot())
}

func (t *Tracer) processName() string {
	if t == nil || t.cfg.Process == "" {
		return "als"
	}
	return t.cfg.Process
}

func writeChromeTrace(w io.Writer, process string, spans []SpanRecord) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": process}},
	}
	// One lane per trace, in order of first appearance.
	lane := make(map[TraceID]int)
	for _, s := range spans {
		tid, ok := lane[s.Trace]
		if !ok {
			tid = len(lane)
			lane[s.Trace] = tid
			events = append(events, chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": "trace " + s.Trace.String()}})
		}
		args := map[string]any{
			"trace_id": s.Trace.String(),
			"span_id":  s.ID.String(),
		}
		if s.Parent != 0 {
			args["parent_id"] = s.Parent.String()
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			TS:  float64(s.Start.UnixNano()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
			PID: 1, TID: tid, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}

// spanJSON is the JSONL line form of one finished span.
type spanJSON struct {
	Trace       string            `json:"trace"`
	Span        string            `json:"span"`
	Parent      string            `json:"parent,omitempty"`
	Name        string            `json:"name"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurMS       float64           `json:"dur_ms"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

func recordJSON(s SpanRecord) spanJSON {
	j := spanJSON{
		Trace:       s.Trace.String(),
		Span:        s.ID.String(),
		Name:        s.Name,
		StartUnixNS: s.Start.UnixNano(),
		DurMS:       float64(s.Dur.Nanoseconds()) / 1e6,
	}
	if s.Parent != 0 {
		j.Parent = s.Parent.String()
	}
	if len(s.Attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	return j
}

// WriteJSONL renders the ring buffer one span-object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(recordJSON(s)); err != nil {
			return err
		}
	}
	return nil
}

// TracesHandler serves the ring buffer at /debug/traces: Chrome trace JSON
// by default, one span per line with ?format=jsonl. Nil-safe: a nil tracer
// returns a nil handler, which obs.DebugMux leaves unmounted.
func (t *Tracer) TracesHandler() http.Handler {
	if t == nil {
		return nil
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			t.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		t.WriteChromeTrace(w)
	})
}

// slowTraceJSON is one flight-recorder entry on /debug/slowest.
type slowTraceJSON struct {
	TraceID     string     `json:"trace_id"`
	StartUnixNS int64      `json:"start_unix_ns"`
	DurMS       float64    `json:"dur_ms"`
	Spans       []spanJSON `json:"spans"`
}

// SlowestHandler serves the flight recorder at /debug/slowest: endpoint →
// slowest-first retained traces, each with its full per-hop breakdown.
func (t *Tracer) SlowestHandler() http.Handler {
	if t == nil {
		return nil
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string][]slowTraceJSON)
		for ep, traces := range t.Slowest() {
			lst := make([]slowTraceJSON, len(traces))
			for i, st := range traces {
				spans := make([]spanJSON, len(st.Spans))
				for j, s := range st.Spans {
					spans[j] = recordJSON(s)
				}
				lst[i] = slowTraceJSON{
					TraceID:     st.Trace.String(),
					StartUnixNS: st.Start.UnixNano(),
					DurMS:       float64(st.Dur.Nanoseconds()) / 1e6,
					Spans:       spans,
				}
			}
			out[ep] = lst
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) // map keys marshal sorted, so output order is stable
	})
}
