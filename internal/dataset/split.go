package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Split partitions a rating matrix into train and test sets by holding out
// each rating independently with probability testFrac. The split is
// deterministic for a given seed. Users/items that end up with no training
// ratings simply keep zero factors (Algorithm 2 skips empty rows), matching
// how the paper's implementation handles cold rows.
func Split(mx *sparse.Matrix, testFrac float64, seed int64) (train, test *sparse.Matrix, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: testFrac %g out of [0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	m, n := mx.Rows(), mx.Cols()
	trainCOO := sparse.NewCOO(m, n)
	testCOO := sparse.NewCOO(m, n)
	r := mx.R
	for u := 0; u < m; u++ {
		cols, vals := r.Row(u)
		for j, c := range cols {
			if rng.Float64() < testFrac {
				testCOO.Append(u, int(c), vals[j])
			} else {
				trainCOO.Append(u, int(c), vals[j])
			}
		}
	}
	// Preserve logical dimensions even if the last rows/cols went to one side.
	trainCOO.Rows, trainCOO.Cols = m, n
	testCOO.Rows, testCOO.Cols = m, n
	train, err = sparse.NewMatrix(trainCOO)
	if err != nil {
		return nil, nil, err
	}
	test, err = sparse.NewMatrix(testCOO)
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
