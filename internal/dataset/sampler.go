package dataset

import "math/rand"

// ZipfSampler draws indices in [0,n) with the same truncated-Zipf
// popularity profile the synthetic generator uses for user/item degrees,
// via the alias method (O(1) per draw). The serving load generator uses it
// so request traffic has the datasets' hallmark skew: a few hot users, a
// long cold tail. Not safe for concurrent use — give each worker its own.
type ZipfSampler struct {
	rng   *rand.Rand
	table *alias
}

// NewZipfSampler builds a sampler over n indices with Zipf exponent skew
// (larger = heavier head); skew 0 is uniform.
func NewZipfSampler(n int, skew float64, seed int64) *ZipfSampler {
	rng := rand.New(rand.NewSource(seed))
	w := zipfWeights(rng, n, skew)
	return &ZipfSampler{rng: rng, table: newAlias(w, rng)}
}

// Draw returns the next sampled index.
func (s *ZipfSampler) Draw() int { return s.table.draw(s.rng) }
