// Package dataset supplies the rating matrices the paper evaluates on.
//
// The paper uses four public datasets (Table I): Movielens10M, Netflix,
// YahooMusic R1 and YahooMusic R4. Those downloads are not available in this
// offline environment, so the package provides (a) a loader for the paper's
// `<userID, itemID, rating>` text format for users who have the real files,
// and (b) a deterministic synthetic generator whose presets match each
// dataset's (m, n, Nz) and reproduce the heavy-tailed rows-per-user /
// ratings-per-item skew that drives the paper's load-imbalance findings.
// Presets accept a scale factor so benchmark runs shrink the matrices while
// preserving density and skew.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/sparse"
)

// Dataset is a rating matrix plus its provenance.
type Dataset struct {
	Name   string
	Matrix *sparse.Matrix
	// Meta describes the preset this dataset was generated from, if any.
	Meta *Preset
}

// Preset describes one of the paper's Table I datasets.
type Preset struct {
	Name   string // paper abbreviation: MVLE, NTFX, YMR1, YMR4
	Long   string // full dataset name
	Users  int    // m
	Items  int    // n
	NNZ    int    // training nonzeros
	MinVal float32
	MaxVal float32
	// UserSkew and ItemSkew are the Zipf exponents of the synthetic degree
	// distributions; larger means heavier tails (more imbalance).
	UserSkew float64
	ItemSkew float64
}

// The paper's Table I.
var (
	Movielens = Preset{Name: "MVLE", Long: "Movielens10M", Users: 71567, Items: 65133,
		NNZ: 8000044, MinVal: 0.5, MaxVal: 5, UserSkew: 0.82, ItemSkew: 0.78}
	Netflix = Preset{Name: "NTFX", Long: "NetFlix", Users: 480189, Items: 17770,
		NNZ: 99072112, MinVal: 1, MaxVal: 5, UserSkew: 0.85, ItemSkew: 0.72}
	YahooR1 = Preset{Name: "YMR1", Long: "YahooMusic R1", Users: 1948882, Items: 98212,
		NNZ: 115248575, MinVal: 1, MaxVal: 5, UserSkew: 0.9, ItemSkew: 0.8}
	YahooR4 = Preset{Name: "YMR4", Long: "YahooMusic R4", Users: 7642, Items: 11916,
		NNZ: 211231, MinVal: 1, MaxVal: 5, UserSkew: 0.75, ItemSkew: 0.75}
)

// Presets lists the Table I datasets in the paper's figure order.
var Presets = []Preset{Movielens, Netflix, YahooR1, YahooR4}

// PresetByName looks a preset up by its paper abbreviation (case-sensitive).
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name || p.Long == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("dataset: unknown preset %q", name)
}

// Scaled returns a copy of the preset with users, items and nonzeros scaled
// by f (0 < f <= 1), preserving density and skew. Dimensions are floored at
// small minimums so extreme scales stay valid matrices.
func (p Preset) Scaled(f float64) Preset {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("dataset: scale %g out of (0,1]", f))
	}
	s := p
	// Scale rows/cols by sqrt(f) and nnz by f: density is preserved.
	dim := math.Sqrt(f)
	s.Users = maxInt(8, int(float64(p.Users)*dim))
	s.Items = maxInt(8, int(float64(p.Items)*dim))
	s.NNZ = maxInt(16, int(float64(p.NNZ)*f))
	// A scaled preset must stay realizable: nnz can't exceed the dense size.
	if cap := s.Users * s.Items; s.NNZ > cap {
		s.NNZ = cap
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a deterministic synthetic rating matrix for the preset.
//
// Construction: user and item sampling weights follow truncated Zipf
// distributions with the preset's exponents; (u,i) pairs are drawn from the
// product distribution and deduplicated, giving the hallmark recommender
// shape — a few very active users / popular items and a long tail — which is
// what makes flat one-thread-per-row scheduling imbalanced (Sec. III-B).
// Ratings are drawn from a discretized per-user-biased distribution in
// [MinVal, MaxVal]. A planted low-rank signal (rank 4) is mixed in so that
// factorization genuinely reduces RMSE across iterations rather than
// fitting pure noise.
func (p Preset) Generate(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	userW := zipfWeights(rng, p.Users, p.UserSkew)
	itemW := zipfWeights(rng, p.Items, p.ItemSkew)
	userAlias := newAlias(userW, rng)
	itemAlias := newAlias(itemW, rng)

	// Planted rank-4 structure for meaningful convergence.
	const rank = 4
	uf := make([]float32, p.Users*rank)
	vf := make([]float32, p.Items*rank)
	for i := range uf {
		uf[i] = rng.Float32()
	}
	for i := range vf {
		vf[i] = rng.Float32()
	}

	span := p.MaxVal - p.MinVal
	coo := sparse.NewCOO(p.Users, p.Items)
	seen := make(map[uint64]struct{}, p.NNZ+p.NNZ/4)
	attempts := 0
	maxAttempts := p.NNZ * 40
	for len(coo.Entries) < p.NNZ && attempts < maxAttempts {
		attempts++
		u := userAlias.draw(rng)
		i := itemAlias.draw(rng)
		key := uint64(u)<<32 | uint64(uint32(i))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		// Signal: inner product of planted factors, squashed into range.
		// Dividing by rank/2 centers the signal near 0.5 with enough spread
		// that the low-rank structure dominates the noise — factorization
		// must beat a global-mean predictor on held-out ratings.
		var sig float64
		for r := 0; r < rank; r++ {
			sig += float64(uf[u*rank+r]) * float64(vf[i*rank+r])
		}
		sig /= rank / 2
		noise := rng.NormFloat64() * 0.06
		val := float64(p.MinVal) + (sig+noise)*float64(span)
		val = clamp(val, float64(p.MinVal), float64(p.MaxVal))
		// Quantize to half-star steps like the real datasets.
		val = math.Round(val*2) / 2
		coo.Append(u, i, float32(val))
	}
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		// The generator guarantees unique coordinates; a failure here is a bug.
		panic(fmt.Sprintf("dataset: generate %s: %v", p.Name, err))
	}
	meta := p
	return &Dataset{Name: p.Name, Matrix: mx, Meta: &meta}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// zipfWeights returns n sampling weights w_r ∝ 1/rank^s with the ranks
// randomly permuted so row index does not correlate with popularity (real
// datasets assign IDs arbitrarily; this also exercises scattered access).
func zipfWeights(rng *rand.Rand, n int, s float64) []float64 {
	w := make([]float64, n)
	for r := 0; r < n; r++ {
		w[r] = 1 / math.Pow(float64(r+1), s)
	}
	rng.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// alias implements Vose's alias method for O(1) weighted sampling; the
// generator draws up to ~10^8 pairs for full-size presets, so sampling must
// be constant-time.
type alias struct {
	prob  []float64
	alias []int32
}

func newAlias(weights []float64, rng *rand.Rand) *alias {
	n := len(weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	a := &alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

func (a *alias) draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Load reads a rating file in the paper's `<userID, itemID, rating>` format.
func Load(path string, oneBased bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	coo, err := sparse.ReadTriples(f, oneBased)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return &Dataset{Name: path, Matrix: mx}, nil
}

// ScaledForBench returns a benchmark-sized copy of the preset that keeps
// the per-row/column nonzero counts closer to the full dataset's than the
// density-preserving Scaled does: nonzeros scale by f while users and items
// shrink super-linearly (f^0.8 and f^0.6). Mean row length thus falls only
// by ~f^0.2, so per-row effects (stage shares, batching wins) measured at
// bench scale keep the full-size shape. Density rises as a result; it is
// capped at 25% to stay a plausible sparse matrix. f > 1 grows the preset
// by the same laws — serving-side benches use this to stretch a small
// catalog until the top-N scan, not fixed per-request overhead, dominates.
func (p Preset) ScaledForBench(f float64) Preset {
	if f <= 0 {
		panic(fmt.Sprintf("dataset: bench scale %g must be positive", f))
	}
	if f == 1 {
		return p
	}
	s := p
	s.Users = maxInt(8, int(float64(p.Users)*math.Pow(f, 0.8)))
	s.Items = maxInt(8, int(float64(p.Items)*math.Pow(f, 0.6)))
	s.NNZ = maxInt(16, int(float64(p.NNZ)*f))
	if cap := s.Users * s.Items / 4; s.NNZ > cap {
		s.NNZ = cap
	}
	return s
}
