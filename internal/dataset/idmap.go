package dataset

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/sparse"
)

// IDMap translates between the external IDs of a rating file and the dense
// 0-based indices the solver uses. Real datasets have sparse ID spaces —
// Netflix user IDs reach 2 649 429 for 480 189 actual users — so training
// on raw IDs would allocate (and iterate) millions of empty rows.
type IDMap struct {
	toDense map[int64]int32
	toOrig  []int64
}

// newIDMap builds a map over the given external IDs (deduplicated; dense
// indices follow the sorted external order for determinism).
func newIDMap(ids []int64) *IDMap {
	uniq := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		uniq[id] = struct{}{}
	}
	sorted := make([]int64, 0, len(uniq))
	for id := range uniq {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m := &IDMap{toDense: make(map[int64]int32, len(sorted)), toOrig: sorted}
	for i, id := range sorted {
		m.toDense[id] = int32(i)
	}
	return m
}

// Len is the number of distinct external IDs.
func (m *IDMap) Len() int { return len(m.toOrig) }

// Dense returns the dense index for an external ID.
func (m *IDMap) Dense(orig int64) (int, bool) {
	d, ok := m.toDense[orig]
	return int(d), ok
}

// Orig returns the external ID for a dense index.
func (m *IDMap) Orig(dense int) int64 { return m.toOrig[dense] }

// CompactDataset is a rating matrix with its ID translation tables.
type CompactDataset struct {
	*Dataset
	Users *IDMap
	Items *IDMap
}

// LoadCompact reads a rating file like Load but remaps user and item IDs to
// dense indices, returning the translation maps. Use it for real datasets
// whose ID spaces are sparse.
func LoadCompact(path string, oneBased bool) (*CompactDataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	coo, err := sparse.ReadTriples(f, oneBased)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return CompactFromCOO(path, coo)
}

// CompactFromCOO remaps an already-parsed COO matrix.
func CompactFromCOO(name string, coo *sparse.COO) (*CompactDataset, error) {
	users := make([]int64, len(coo.Entries))
	items := make([]int64, len(coo.Entries))
	for i, e := range coo.Entries {
		users[i] = int64(e.Row)
		items[i] = int64(e.Col)
	}
	um, im := newIDMap(users), newIDMap(items)
	dense := sparse.NewCOO(um.Len(), im.Len())
	for _, e := range coo.Entries {
		u, _ := um.Dense(int64(e.Row))
		i, _ := im.Dense(int64(e.Col))
		dense.Append(u, i, e.Val)
	}
	mx, err := sparse.NewMatrix(dense)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", name, err)
	}
	return &CompactDataset{
		Dataset: &Dataset{Name: name, Matrix: mx},
		Users:   um,
		Items:   im,
	}, nil
}
