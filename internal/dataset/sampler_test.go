package dataset

import (
	"sort"
	"testing"
)

func TestZipfSamplerDeterministicAndInRange(t *testing.T) {
	a := NewZipfSampler(100, 0.9, 7)
	b := NewZipfSampler(100, 0.9, 7)
	for i := 0; i < 1000; i++ {
		va, vb := a.Draw(), b.Draw()
		if va != vb {
			t.Fatalf("draw %d: %d != %d with same seed", i, va, vb)
		}
		if va < 0 || va >= 100 {
			t.Fatalf("draw %d out of range: %d", i, va)
		}
	}
}

// TestZipfSamplerSkew: with a heavy exponent the hottest few indices must
// take a far larger traffic share than uniform sampling would give them.
func TestZipfSamplerSkew(t *testing.T) {
	const n, draws = 1000, 50000
	s := NewZipfSampler(n, 0.9, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Draw()]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	// Uniform would give the top 10 of 1000 indices ~1% of traffic; Zipf
	// s=0.9 concentrates far more than that.
	if share := float64(top10) / draws; share < 0.05 {
		t.Fatalf("top-10 share = %.3f, want the power-law head", share)
	}
}
