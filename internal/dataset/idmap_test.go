package dataset

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestIDMapRoundTrip(t *testing.T) {
	m := newIDMap([]int64{100, 5, 100, 2649429, 5})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct ids", m.Len())
	}
	// Dense order is sorted external order.
	wantOrder := []int64{5, 100, 2649429}
	for i, orig := range wantOrder {
		d, ok := m.Dense(orig)
		if !ok || d != i {
			t.Fatalf("Dense(%d) = %d,%v; want %d", orig, d, ok, i)
		}
		if m.Orig(i) != orig {
			t.Fatalf("Orig(%d) = %d, want %d", i, m.Orig(i), orig)
		}
	}
	if _, ok := m.Dense(999); ok {
		t.Fatal("Dense accepted unknown id")
	}
}

func TestIDMapQuick(t *testing.T) {
	f := func(ids []int64) bool {
		if len(ids) == 0 {
			return true
		}
		m := newIDMap(ids)
		for _, id := range ids {
			d, ok := m.Dense(id)
			if !ok || m.Orig(d) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCompactShrinksSparseIDSpace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sparse_ids.txt")
	// Netflix-style sparse IDs: 3 users spread over a 2.6M id space.
	content := "7 1000 4.0\n2649429 1000 2.0\n500000 33 3.0\n7 33 5.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cd, err := LoadCompact(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Matrix.Rows() != 3 || cd.Matrix.Cols() != 2 {
		t.Fatalf("compact dims %dx%d, want 3x2", cd.Matrix.Rows(), cd.Matrix.Cols())
	}
	if cd.Matrix.NNZ() != 4 {
		t.Fatalf("nnz = %d", cd.Matrix.NNZ())
	}
	// Values preserved under the remap.
	u, _ := cd.Users.Dense(7)
	i, _ := cd.Items.Dense(33)
	if got := cd.Matrix.R.At(u, i); got != 5.0 {
		t.Fatalf("remapped value = %g, want 5", got)
	}
	// The plain loader would have allocated 2 649 430 rows.
	plain, err := Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Matrix.Rows() <= cd.Matrix.Rows() {
		t.Fatal("test premise broken: plain load not larger")
	}
}

func TestCompactFromCOOEmpty(t *testing.T) {
	cd, err := CompactFromCOO("empty", sparse.NewCOO(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if cd.Users.Len() != 0 || cd.Matrix.NNZ() != 0 {
		t.Fatalf("empty compact wrong: %d users, %d nnz", cd.Users.Len(), cd.Matrix.NNZ())
	}
}
