package dataset

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestPresetTable1Shapes(t *testing.T) {
	// The presets must carry exactly the paper's Table I numbers.
	want := []struct {
		name    string
		m, n, z int
	}{
		{"MVLE", 71567, 65133, 8000044},
		{"NTFX", 480189, 17770, 99072112},
		{"YMR1", 1948882, 98212, 115248575},
		{"YMR4", 7642, 11916, 211231},
	}
	for i, w := range want {
		p := Presets[i]
		if p.Name != w.name || p.Users != w.m || p.Items != w.n || p.NNZ != w.z {
			t.Errorf("preset %d = %s(%d,%d,%d), want %s(%d,%d,%d)",
				i, p.Name, p.Users, p.Items, p.NNZ, w.name, w.m, w.n, w.z)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("NTFX")
	if err != nil || p.Long != "NetFlix" {
		t.Fatalf("PresetByName(NTFX) = %v, %v", p, err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	p, err = PresetByName("Movielens10M")
	if err != nil || p.Name != "MVLE" {
		t.Fatalf("PresetByName by long name failed: %v %v", p, err)
	}
}

func TestScaledPreservesDensity(t *testing.T) {
	p := Netflix
	s := p.Scaled(0.01)
	origDensity := float64(p.NNZ) / (float64(p.Users) * float64(p.Items))
	newDensity := float64(s.NNZ) / (float64(s.Users) * float64(s.Items))
	if math.Abs(newDensity-origDensity)/origDensity > 0.1 {
		t.Fatalf("density drifted: %g -> %g", origDensity, newDensity)
	}
	if s.NNZ >= p.NNZ || s.Users >= p.Users {
		t.Fatal("Scaled did not shrink")
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%g) did not panic", f)
				}
			}()
			Movielens.Scaled(f)
		}()
	}
}

func TestScaledTinyStaysRealizable(t *testing.T) {
	f := func(u uint8) bool {
		frac := (float64(u) + 1) / 10000 // very small scales
		s := YahooR4.Scaled(frac)
		return s.Users >= 8 && s.Items >= 8 && s.NNZ >= 16 && s.NNZ <= s.Users*s.Items
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := YahooR4.Scaled(0.05)
	a := p.Generate(42)
	b := p.Generate(42)
	if a.Matrix.NNZ() != b.Matrix.NNZ() {
		t.Fatalf("nnz differs across identical seeds: %d vs %d", a.Matrix.NNZ(), b.Matrix.NNZ())
	}
	for i := range a.Matrix.R.Val {
		if a.Matrix.R.Val[i] != b.Matrix.R.Val[i] || a.Matrix.R.ColIdx[i] != b.Matrix.R.ColIdx[i] {
			t.Fatal("payload differs across identical seeds")
		}
	}
	c := p.Generate(43)
	same := c.Matrix.NNZ() == a.Matrix.NNZ()
	if same {
		diff := false
		for i := range a.Matrix.R.Val {
			if a.Matrix.R.ColIdx[i] != c.Matrix.R.ColIdx[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestGenerateShapeAndRange(t *testing.T) {
	p := Movielens.Scaled(0.002)
	ds := p.Generate(1)
	mx := ds.Matrix
	if mx.Rows() != p.Users || mx.Cols() != p.Items {
		t.Fatalf("dims %dx%d, want %dx%d", mx.Rows(), mx.Cols(), p.Users, p.Items)
	}
	// NNZ should hit the target (generous attempt budget at this density).
	if mx.NNZ() < p.NNZ*9/10 {
		t.Fatalf("nnz %d < 90%% of target %d", mx.NNZ(), p.NNZ)
	}
	if err := mx.R.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range mx.R.Val {
		if v < p.MinVal || v > p.MaxVal {
			t.Fatalf("rating %g out of [%g,%g]", v, p.MinVal, p.MaxVal)
		}
		// Half-star quantization.
		if r := math.Mod(float64(v)*2, 1); r != 0 {
			t.Fatalf("rating %g not half-star quantized", v)
		}
	}
}

func TestGenerateSkew(t *testing.T) {
	// The synthetic generator must produce the skewed degree distribution the
	// paper's imbalance argument depends on: CoV well above a uniform draw's.
	p := Netflix.Scaled(0.0005)
	ds := p.Generate(7)
	s := sparse.RowStats(ds.Matrix.R)
	if s.CoV < 0.8 {
		t.Fatalf("row-degree CoV = %.2f; want heavy skew (>0.8) for %s", s.CoV, p.Name)
	}
	if s.Max < 5*int(s.Mean+1) {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", s.Max, s.Mean)
	}
}

func TestSplit(t *testing.T) {
	p := YahooR4.Scaled(0.05)
	ds := p.Generate(3)
	train, test, err := Split(ds.Matrix, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := train.NNZ() + test.NNZ()
	if total != ds.Matrix.NNZ() {
		t.Fatalf("split lost ratings: %d + %d != %d", train.NNZ(), test.NNZ(), ds.Matrix.NNZ())
	}
	frac := float64(test.NNZ()) / float64(total)
	if math.Abs(frac-0.2) > 0.05 {
		t.Fatalf("test fraction %g, want ~0.2", frac)
	}
	if train.Rows() != ds.Matrix.Rows() || test.Cols() != ds.Matrix.Cols() {
		t.Fatal("split changed logical dimensions")
	}
	// No rating may appear in both sides.
	for u := 0; u < train.Rows(); u++ {
		cols, _ := train.R.Row(u)
		for _, c := range cols {
			if test.R.At(u, int(c)) != 0 {
				t.Fatalf("rating (%d,%d) in both train and test", u, c)
			}
		}
	}
}

func TestSplitBadFrac(t *testing.T) {
	ds := YahooR4.Scaled(0.05).Generate(1)
	if _, _, err := Split(ds.Matrix, 1.0, 1); err == nil {
		t.Fatal("accepted testFrac = 1")
	}
	if _, _, err := Split(ds.Matrix, -0.1, 1); err == nil {
		t.Fatal("accepted negative testFrac")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ratings.txt")
	content := "0 1 4.5\n1 0 2.0\n1 2 3.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Matrix.NNZ() != 3 || ds.Matrix.R.At(0, 1) != 4.5 {
		t.Fatalf("loaded matrix wrong: nnz=%d", ds.Matrix.NNZ())
	}
	if _, err := Load(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestAliasSamplerDistribution(t *testing.T) {
	// A degenerate weight vector must always draw the heavy index.
	w := []float64{0.0001, 0.0001, 10000}
	rng := newTestRand()
	a := newAlias(w, rng)
	heavy := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if a.draw(rng) == 2 {
			heavy++
		}
	}
	if heavy < draws*99/100 {
		t.Fatalf("heavy index drawn %d/%d times", heavy, draws)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
