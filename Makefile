# Convenience targets for the ALS reproduction.

GO ?= go

.PHONY: all build test test-short bench ci experiments examples kernels serve clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The full gate: formatting, static checks, build, and the race-enabled
# short test suite (includes the serving layer's hot-swap stress test).
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/alsbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movierecs
	$(GO) run ./examples/crossplatform
	$(GO) run ./examples/tuning
	$(GO) run ./examples/implicit
	$(GO) run ./examples/coldstart

# Train a small preset model and serve it (see README "Serving").
serve:
	$(GO) run ./cmd/alstrain -preset MVLE -scale 0.02 -iters 8 -out /tmp/als-model.bin
	$(GO) run ./cmd/alsserve -model /tmp/als-model.bin

# Emit the OpenCL C sources for real hardware.
kernels:
	$(GO) run ./cmd/alsclgen -k 10 -group-size 32

clean:
	$(GO) clean ./...
