# Convenience targets for the ALS reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-capture bench-capture-modes ci obs-smoke chaos-smoke dist-smoke fault-smoke quant-smoke implicit-smoke trace-smoke experiments examples kernels serve clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The full gate: formatting, static checks, build, the race-enabled short
# test suite (includes the serving layer's hot-swap stress test), a full
# race pass over the concurrency-heavy packages (worker pool, hot-swap,
# checkpoint watcher — these exercise goroutines the -short lane trims),
# the observability smoke lane (a real 1-iteration alstrain run scraped
# over -debug-addr; fails on unparseable exposition output), the chaos
# smoke lane (a fully poisoned run must converge, expose its recovery
# counters, and be bit-reproducible), the quantized-serving smoke lane
# (f16/i8 serving must track the f32 ranking), the implicit-feedback smoke
# lane (a real implicit alstrain run through the CG and iALS++ fast paths
# with a recall@10 floor and per-mode stage metrics), the trace smoke lane
# (a fully-sampled 2-shard fleet whose /debug/traces must export Chrome
# trace JSON with a shard hop child under every frontend root span), the
# fault smoke lane (SIGKILL a worker mid-iteration and still match the
# clean run's bytes; graceful SIGTERM with a resumable checkpoint; no
# orphans after a coordinator SIGKILL), and a one-shot bench smoke so
# benchmark code cannot rot unnoticed.
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/checkpoint ./internal/core ./internal/host ./internal/serve ./internal/solvers
	$(MAKE) obs-smoke
	$(MAKE) chaos-smoke
	$(MAKE) dist-smoke
	$(MAKE) fault-smoke
	$(MAKE) quant-smoke
	$(MAKE) implicit-smoke
	$(MAKE) trace-smoke
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Observability smoke: build alstrain, run one training iteration with
# -debug-addr, scrape live /metrics and /runinfo, and validate the
# Prometheus exposition text plus the Chrome trace and JSONL exports.
obs-smoke:
	$(GO) test -run TestAlstrainDebugSmoke -count=1 ./internal/obs

# Chaos smoke: build alstrain, train through a fully poisoned run (NaN/Inf/
# huge ratings, zeroed Gram diagonals, a forced solver failure, a loss
# blow-up) and require exit 0, RMSE within 10% of a clean run, non-zero
# guard counters on /metrics, bit-identical repeat runs, and a fast typed
# failure under -strict-numerics.
chaos-smoke:
	$(GO) test -run TestAlstrainChaosSmoke -count=1 ./internal/guard

# Quantized-serving smoke: through the real binaries, train a tiny preset
# model and serve it at f32, f16 and i8 (alsserve -precision); each
# quantized server's top-10 must overlap the f32 ranking by >= 0.9 on
# average, /v1/model must report the precision, and /metrics must pass the
# strict exposition parser with the precision and quantization-error gauges.
quant-smoke:
	$(GO) test -run TestQuantSmoke -count=1 ./internal/quant

# Implicit-feedback smoke: build alstrain, train the YMR4 preset in
# implicit mode through the CG solver (-solver cg) and the iALS++ block
# updates (-block-size), and require held-out recall@10 above the floor
# plus a valid /metrics exposition whose stage seconds are attributed to
# mode="implicit" (s2/s3 for CG, the fused s1+s2 for block sweeps).
implicit-smoke:
	$(GO) test -run TestImplicitSmoke -count=1 ./internal/solvers

# Distributed smoke: through the real binaries, train a tiny preset with
# -workers 2 and require the model byte-identical to single-process, then
# stand up two alsserve shard replicas plus an alsfront frontend, serve a
# merged recommendation, and validate the frontend's /metrics exposition.
# All processes are killed by test cleanup even on failure — no orphans.
dist-smoke:
	$(GO) test -run TestDistSmoke -count=1 ./internal/shard

# Fault smoke: through the real alstrain binary, SIGKILL a worker
# mid-iteration and require the run to finish by respawning it with the
# model byte-identical to a clean run and a nonzero respawn counter on
# /metrics; SIGTERM the coordinator and require a resumable checkpoint,
# exit code 3, no orphan workers, and a -resume rerun matching the clean
# bytes; SIGKILL the coordinator and require every worker to self-terminate.
fault-smoke:
	$(GO) test -run TestFaultSmoke -count=1 ./internal/shard

# Trace smoke: through the real binaries, boot two alsserve shard replicas
# behind an alsfront sampling every request (-trace-sample 1.0), drive
# recommendations, and require /debug/traces to serve well-formed Chrome
# trace JSON in which every frontend root span holds at least one shard hop
# child inside its time envelope, with the same trace IDs retrievable from
# the /debug/slowest flight recorder.
trace-smoke:
	$(GO) test -run TestTraceSmoke -count=1 ./internal/shard

bench:
	$(GO) test -bench=. -benchmem ./...

# Capture the host variant-space wall-clock record (the tracked trajectory:
# BENCH_<n>.json, one file per optimization PR; see README "Performance").
BENCH_OUT ?= BENCH_2.json
bench-capture:
	$(GO) run ./cmd/alsbench -capture $(BENCH_OUT) -capture-scale 0.01

# Capture the training-mode wall-clock record (BENCH_8.json): explicit vs
# implicit feedback x {chol,cg} solver x iALS++ block size at serving-scale
# k, where the CG fast path's speedup over the direct solve is measured.
bench-capture-modes:
	$(GO) run ./cmd/alsbench -capture-modes BENCH_8.json -capture-scale 0.01 -k 64

# Reproduce every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/alsbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movierecs
	$(GO) run ./examples/crossplatform
	$(GO) run ./examples/tuning
	$(GO) run ./examples/implicit
	$(GO) run ./examples/coldstart

# Train a small preset model and serve it (see README "Serving").
serve:
	$(GO) run ./cmd/alstrain -preset MVLE -scale 0.02 -iters 8 -out /tmp/als-model.bin
	$(GO) run ./cmd/alsserve -model /tmp/als-model.bin

# Emit the OpenCL C sources for real hardware.
kernels:
	$(GO) run ./cmd/alsclgen -k 10 -group-size 32

clean:
	$(GO) clean ./...
