# Convenience targets for the ALS reproduction.

GO ?= go

.PHONY: all build test test-short bench experiments examples kernels clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/alsbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/movierecs
	$(GO) run ./examples/crossplatform
	$(GO) run ./examples/tuning
	$(GO) run ./examples/implicit

# Emit the OpenCL C sources for real hardware.
kernels:
	$(GO) run ./cmd/alsclgen -k 10 -group-size 32

clean:
	$(GO) clean ./...
