// coldstart: serving users who signed up after training. Instead of
// retraining, FoldInUser solves the same per-row normal equations the ALS
// X update uses (Eq. 4) against the frozen item factors — milliseconds
// instead of a training run.
//
// Part two drives the same fold-in through the serving layer's HTTP
// endpoint. By default an in-process server is started so the example works
// offline; set ALS_SERVE_ADDR (e.g. "http://localhost:8080") to target a
// running alsserve instead.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	ds := dataset.Movielens.ScaledForBench(0.004).Generate(31)
	mx := ds.Matrix

	// Hold the five most active users out of training entirely.
	type act struct{ u, n int }
	acts := make([]act, mx.Rows())
	for u := range acts {
		acts[u] = act{u, mx.R.RowNNZ(u)}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i].n > acts[j].n })
	held := map[int]bool{}
	for _, a := range acts[:5] {
		held[a.u] = true
	}
	coo := sparse.NewCOO(mx.Rows(), mx.Cols())
	for u := 0; u < mx.Rows(); u++ {
		if held[u] {
			continue
		}
		cols, vals := mx.R.Row(u)
		for j, c := range cols {
			coo.Append(u, int(c), vals[j])
		}
	}
	coo.Rows, coo.Cols = mx.Rows(), mx.Cols()
	train, err := sparse.NewMatrix(coo)
	if err != nil {
		log.Fatal(err)
	}

	const lambda = 0.1
	model, info, err := core.Train(train, core.Config{
		K: 12, Lambda: lambda, Iterations: 10, Seed: 9,
		UseRecommended: true, WeightedLambda: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained without the 5 most active users in %.3fs\n\n", info.Seconds)

	for _, a := range acts[:5] {
		cols, vals := mx.R.Row(a.u)
		// Fold in from the first half of the user's history, evaluate on
		// the second half.
		half := len(cols) / 2
		start := time.Now()
		xu, err := model.FoldInUser(cols[:half], vals[:half], lambda*float32(half))
		if err != nil {
			log.Fatal(err)
		}
		foldMicros := time.Since(start).Microseconds()
		scores := model.ScoreItems(xu)
		var se float64
		for j := half; j < len(cols); j++ {
			d := scores[cols[j]] - float64(vals[j])
			se += d * d
		}
		rmse := math.Sqrt(se / float64(len(cols)-half))
		fmt.Printf("user %-5d: folded in %3d ratings in %4dµs; RMSE on %3d unseen ratings: %.3f\n",
			a.u, half, foldMicros, len(cols)-half, rmse)
	}

	// Part two: the same fold-in through the serving layer's HTTP API.
	base := os.Getenv("ALS_SERVE_ADDR")
	if base == "" {
		srv := serve.New(serve.Config{})
		defer srv.Close()
		srv.Swap(model, train.R, "coldstart-demo")
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("\nin-process server at %s (set ALS_SERVE_ADDR to target a running alsserve)\n", base)
	} else {
		fmt.Printf("\ntargeting external server at %s\n", base)
	}

	u := acts[0].u
	cols, vals := mx.R.Row(u)
	half := len(cols) / 2
	payload, err := json.Marshal(map[string]any{
		"items": cols[:half], "ratings": vals[:half], "n": 5, "lambda": lambda * float64(half),
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/foldin", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /v1/foldin: %s", resp.Status)
	}
	var rec struct {
		Version string `json:"version"`
		Items   []struct {
			Item  int     `json:"item"`
			Score float64 `json:"score"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served fold-in for user %d (model %s): top items", u, rec.Version)
	for _, it := range rec.Items {
		fmt.Printf("  %d (%.2f)", it.Item, it.Score)
	}
	fmt.Println()
}
