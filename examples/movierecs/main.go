// movierecs: an end-to-end recommender — train on a synthetic Netflix-
// shaped dataset, evaluate top-N ranking quality against held-out ratings,
// and print recommendations for a few active users.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	ds := dataset.Netflix.ScaledForBench(0.001).Generate(2024)
	mx := ds.Matrix
	fmt.Printf("dataset %s: %d users x %d items, %d ratings\n",
		ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())

	train, test, err := dataset.Split(mx, 0.2, 3)
	if err != nil {
		log.Fatal(err)
	}

	model, info, err := core.Train(train, core.Config{
		K: 16, Lambda: 0.05, Iterations: 12, Seed: 4,
		UseRecommended: true, WeightedLambda: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %.3fs (%s)\n", info.Seconds, info.Variant)

	// Ranking quality: does the model put high-rated held-out items into
	// its top-N lists?
	const topN = 20
	p, r := metrics.PrecisionRecallAtN(train.R, test.R, model.X, model.Y, topN, 4.0)
	fmt.Printf("precision@%d = %.3f, recall@%d = %.3f (relevance: held-out rating >= 4)\n",
		topN, p, topN, r)

	// Show recommendations for the three most active users.
	type userAct struct{ u, n int }
	best := []userAct{}
	for u := 0; u < train.Rows(); u++ {
		best = append(best, userAct{u, train.R.RowNNZ(u)})
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].n > best[i].n {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	for _, ua := range best[:3] {
		fmt.Printf("user %d has rated %d movies; top 5 recommendations:\n", ua.u, ua.n)
		for rank, item := range model.Recommend(train.R, ua.u, 5) {
			marker := ""
			if actual := test.R.At(ua.u, item); actual >= 4 {
				marker = fmt.Sprintf("  <- held-out rating %.1f", actual)
			}
			fmt.Printf("  %d. movie %-6d predicted %.2f%s\n", rank+1, item, model.Predict(ua.u, item), marker)
		}
	}
}
