// multigpu: data-parallel ALS across several simulated K20c devices — the
// multi-GPU scheme the paper's related work credits cuMF with. Rows are
// sharded per update; the fixed factor is broadcast over PCIe each
// half-iteration. Compute scales with the device count; the serialized
// transfers set the ceiling.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/variant"
)

func main() {
	ds := dataset.Netflix.ScaledForBench(0.002).Generate(55)
	mx := ds.Matrix
	fmt.Printf("dataset %s: %d x %d, %d ratings\n\n", ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())

	cfg := kernels.Config{
		Device: device.K20c(),
		Spec:   kernels.FromVariant(variant.Options{Local: true, Register: true}),
		K:      10, Lambda: 0.1, Iterations: 5, Seed: 3,
	}
	var base float64
	fmt.Println("devices  compute[s]  transfer[s]  total[s]  speedup  efficiency")
	for _, n := range []int{1, 2, 4, 8} {
		devs := make([]*device.Device, n)
		for i := range devs {
			devs[i] = device.K20c()
		}
		res, err := kernels.TrainMulti(mx, cfg, devs)
		if err != nil {
			log.Fatal(err)
		}
		if n == 1 {
			base = res.Seconds()
		}
		sp := base / res.Seconds()
		fmt.Printf("%-7d  %.4f      %.4f       %.4f    %.2fx    %.0f%%\n",
			n, res.ComputeSeconds, res.TransferSeconds, res.Seconds(), sp, sp/float64(n)*100)
	}
	fmt.Println("\n(The factors are identical at every device count; sharding only moves compute.)")
}
