// crossplatform: the paper's portability claim in action — the same ALS
// model trains on the host and on all three simulated OpenCL platforms
// (K20c GPU, Xeon Phi MIC, Xeon E5 CPU), producing identical factors while
// the modeled execution time reflects each architecture.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
)

func main() {
	ds := dataset.YahooR4.ScaledForBench(0.3).Generate(99)
	mx := ds.Matrix
	fmt.Printf("dataset %s: %d x %d, %d ratings\n\n", ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())

	cfg := core.Config{K: 10, Lambda: 0.1, Iterations: 5, Seed: 6, UseRecommended: true}

	ref, hostInfo, err := core.Train(mx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-38s %10.4fs (wall-clock)  RMSE %.4f\n",
		"host", hostInfo.Variant, hostInfo.Seconds, ref.RMSE(mx.R))

	for _, platform := range []string{"GPU", "MIC", "CPU"} {
		c := cfg
		c.Platform = platform
		model, info, err := core.Train(mx, c)
		if err != nil {
			log.Fatal(err)
		}
		drift := linalg.MaxAbsDiff(ref.X, model.X)
		fmt.Printf("%-6s %-38s %10.4fs (simulated)   RMSE %.4f  max factor drift vs host %.2g\n",
			platform, info.Variant, info.Seconds, model.RMSE(mx.R), drift)
		fmt.Printf("       stages: S1 %.4fs  S2 %.4fs  S3 %.4fs\n",
			info.StageSeconds[0], info.StageSeconds[1], info.StageSeconds[2])
	}

	fmt.Println("\nthe flat SAC'15 baseline on the same GPU, for contrast:")
	c := cfg
	c.Platform = "GPU"
	c.Baseline = true
	_, info, err := core.Train(mx, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-38s %10.4fs (simulated)\n", "GPU", info.Variant, info.Seconds)
}
