// tuning: the paper's two variant-selection stories —
//
//  1. empirical selection (Sec. III-D): probe all 8 code variants on the
//     target platform and pick the fastest;
//  2. the future-work learned selector: train a nearest-neighbour model on
//     those empirical winners, then predict the variant for an unseen
//     dataset without probing;
//
// plus the hotspot-guided stage tuning of Sec. V-C.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/variant"
)

func main() {
	platforms := []string{"GPU", "MIC", "CPU"}
	trainSets := []struct {
		preset dataset.Preset
		scale  float64
	}{
		{dataset.Movielens, 0.004},
		{dataset.YahooR4, 0.3},
	}

	selector := variant.NewMLSelector(3)
	fmt.Println("== empirical variant selection (Sec. III-D) ==")
	for _, ts := range trainSets {
		ds := ts.preset.ScaledForBench(ts.scale).Generate(5)
		for _, platform := range platforms {
			best, ms, err := core.SelectVariant(ds.Matrix, platform, core.Config{K: 10, Lambda: 0.1, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s %-4s best: %-34s (%.4fs; slowest %s at %.4fs)\n",
				ds.Name, platform, best, ms[0].Seconds, ms[len(ms)-1].Variant.ID(), ms[len(ms)-1].Seconds)
			selector.Train(variant.Sample{
				Features: core.FeaturesOf(ds.Matrix, platform, 10),
				Best:     best,
			})
		}
	}

	fmt.Println("\n== learned selection on an unseen dataset (future work) ==")
	unseen := dataset.Netflix.ScaledForBench(0.001).Generate(6)
	for _, platform := range platforms {
		predicted, err := selector.Predict(core.FeaturesOf(unseen.Matrix, platform, 10))
		if err != nil {
			log.Fatal(err)
		}
		actual, _, err := core.SelectVariant(unseen.Matrix, platform, core.Config{K: 10, Lambda: 0.1, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		match := "MISS"
		if predicted == actual {
			match = "HIT"
		}
		fmt.Printf("%-4s predicted %-34s empirical %-34s %s\n", platform, predicted, actual, match)
	}

	fmt.Println("\n== hotspot-guided tuning on Netflix/K20c (Sec. V-C, Fig. 8) ==")
	ntfx := dataset.Netflix.ScaledForBench(0.002).Generate(7)
	steps, final, err := trace.Tune(ntfx.Matrix, kernels.Config{
		Device: device.K20c(), K: 10, Lambda: 0.1, Iterations: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range steps {
		fmt.Println("  " + st.String())
	}
	fmt.Printf("final kernel: %s\n", final.Name())
}
