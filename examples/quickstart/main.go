// Quickstart: train an ALS model on a synthetic Movielens-shaped dataset,
// inspect convergence, and predict a few ratings.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// A Movielens10M-shaped synthetic dataset at 1/200 bench scale
	// (~40k ratings). dataset.Load reads real rating files instead.
	ds := dataset.Movielens.ScaledForBench(0.005).Generate(42)
	mx := ds.Matrix
	fmt.Printf("dataset %s: %d users x %d items, %d ratings\n",
		ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())

	// Hold out 10% of the ratings to check generalization.
	train, test, err := dataset.Split(mx, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Train with the paper's defaults: k=10, lambda=0.1, 5 iterations,
	// thread batching with the recommended host optimizations.
	model, info, err := core.Train(train, core.Config{
		K: 10, Lambda: 0.1, Iterations: 10, Seed: 1,
		UseRecommended: true, WeightedLambda: true, TrackLoss: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %.3fs on %s (%s)\n", info.Seconds, info.Platform, info.Variant)
	for _, h := range info.History {
		if h.Half == "Y" {
			fmt.Printf("  iteration %2d: regularized loss %.1f\n", h.Iteration, h.Loss)
		}
	}
	fmt.Printf("train RMSE %.4f | held-out RMSE %.4f\n", model.RMSE(train.R), model.RMSE(test.R))

	// Predict the first few held-out ratings.
	fmt.Println("sample held-out predictions:")
	shown := 0
	for u := 0; u < test.Rows() && shown < 5; u++ {
		cols, vals := test.R.Row(u)
		for j, c := range cols {
			fmt.Printf("  user %-5d item %-5d actual %.1f predicted %.2f\n",
				u, c, vals[j], model.Predict(u, int(c)))
			shown++
			if shown == 5 {
				break
			}
		}
	}
}
