// implicit: the implicit-feedback extension the paper's introduction cites
// as a key ALS advantage. Ratings become observation strengths (play
// counts / watch events); the model learns preferences with confidence
// weighting and is compared against plain explicit ALS and the SGD and
// CCD++ alternatives on the same data.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/solvers"
)

func main() {
	ds := dataset.YahooR4.ScaledForBench(0.3).Generate(77)
	mx := ds.Matrix
	fmt.Printf("dataset %s: %d x %d, %d observations\n\n", ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())

	// --- implicit ALS ---
	start := time.Now()
	x, y, err := solvers.TrainImplicit(mx, solvers.ImplicitConfig{
		K: 10, Lambda: 0.1, Alpha: 20, Iterations: 8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implicit ALS trained in %.3fs\n", time.Since(start).Seconds())

	// Observed pairs should score near 1, unobserved near 0.
	var obs, unobs float64
	var nObs, nUnobs int
	for u := 0; u < mx.Rows(); u++ {
		cols, _ := mx.R.Row(u)
		for _, c := range cols {
			obs += solvers.PreferenceScore(x, y, u, int(c))
			nObs++
		}
	}
	for u := 0; u < mx.Rows(); u += 3 {
		for i := 0; i < mx.Cols(); i += 17 {
			if mx.R.At(u, i) == 0 {
				unobs += solvers.PreferenceScore(x, y, u, i)
				nUnobs++
			}
		}
	}
	fmt.Printf("mean preference: observed %.3f vs unobserved %.3f\n\n",
		obs/float64(nObs), unobs/float64(nUnobs))

	// --- solver comparison on explicit ratings ---
	train, test, err := dataset.Split(mx, 0.15, 2)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, xm, ym *linalg.Dense, secs float64) {
		fmt.Printf("%-14s %8.3fs  train RMSE %.4f  test RMSE %.4f\n",
			name, secs, metrics.RMSE(train.R, xm, ym), metrics.RMSE(test.R, xm, ym))
	}

	start = time.Now()
	model, _, err := core.Train(train, core.Config{K: 10, Lambda: 0.1, Iterations: 10, Seed: 3,
		UseRecommended: true, WeightedLambda: true})
	if err != nil {
		log.Fatal(err)
	}
	report("ALS (ours)", model.X, model.Y, time.Since(start).Seconds())

	start = time.Now()
	sx, sy, err := solvers.TrainSGD(train, solvers.SGDConfig{K: 10, Lambda: 0.05, Epochs: 30, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	report("Hogwild SGD", sx, sy, time.Since(start).Seconds())

	start = time.Now()
	cx, cy, err := solvers.TrainCCD(train, solvers.CCDConfig{K: 10, Lambda: 2, Iterations: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	report("CCD++", cx, cy, time.Since(start).Seconds())
}
