// alsclgen emits the OpenCL C sources of the paper's kernels (the flat
// baseline and the eight thread-batched code variants), specialized for a
// latent factor and work-group size — for use on real OpenCL hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/clgen"
	"repro/internal/variant"
)

func main() {
	k := flag.Int("k", 10, "latent factor the kernels are specialized for")
	ws := flag.Int("group-size", 32, "work-group size the kernels are tuned for")
	variantID := flag.String("variant", "", "emit one variant (e.g. tb+loc+reg), 'baseline', or empty for the full program")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsclgen:", err)
		os.Exit(1)
	}

	var src string
	var err error
	switch *variantID {
	case "":
		src, err = clgen.All(*k, *ws)
	case "baseline":
		src, err = clgen.Baseline(clgen.Params{K: *k, GroupSize: *ws})
	default:
		v, perr := variant.ParseID(*variantID)
		if perr != nil {
			fail(perr)
		}
		src, err = clgen.Batched(clgen.Params{K: *k, GroupSize: *ws, Variant: v})
	}
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fail(cerr)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(src); err != nil {
		fail(err)
	}
}
