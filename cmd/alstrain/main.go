// alstrain trains an ALS factorization on a rating file (the paper's
// `<userID, itemID, rating>` format) or on a synthetic Table I preset, on
// the host or on one of the simulated devices, and optionally saves the
// model for alsrecommend.
//
// With -workers N the run becomes data-parallel across N forked worker
// processes: each solves a static partition of the user (then item) rows
// and the coordinator relays the factor shards between half-iterations
// over loopback TCP. The resulting model is bit-identical to a
// single-process run with the same flags. The -dist-rank/-dist-coord
// flags are the internal re-exec hook for those workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/rtrace"
	"repro/internal/shard"
	"repro/internal/shard/chaosnet"
	"repro/internal/variant"
)

func main() {
	input := flag.String("input", "", "rating file in <user item rating> format")
	oneBased := flag.Bool("one-based", true, "IDs in the rating file start at 1")
	compact := flag.Bool("compact", false, "remap sparse external IDs to dense indices (recommended for real datasets); the ID tables are stored in the model")
	preset := flag.String("preset", "", "synthetic preset instead of a file: MVLE, NTFX, YMR1, YMR4")
	scale := flag.Float64("scale", 0.01, "bench scale for the synthetic preset")
	k := flag.Int("k", 10, "latent factor dimensionality")
	lambda := flag.Float64("lambda", 0.1, "regularization coefficient")
	iters := flag.Int("iters", 5, "ALS iterations")
	seed := flag.Int64("seed", 2017, "random seed")
	platform := flag.String("platform", "host", "host, CPU, GPU or MIC (non-host runs on the simulated device)")
	variantID := flag.String("variant", "", "code variant (e.g. tb+loc+reg); empty = per-architecture recommendation")
	auto := flag.Bool("auto-variant", false, "empirically select the fastest of the 8 variants first")
	testFrac := flag.Float64("test-frac", 0.1, "held-out fraction for RMSE reporting (0 disables)")
	out := flag.String("out", "", "write the trained model to this file")
	version := flag.String("version", "", "version label stored in the model's metadata (shown by alsserve)")
	weighted := flag.Bool("weighted-lambda", false, "use the ALS-WR convention lambda*|Omega|*I")
	implicit := flag.Bool("implicit", false, "train implicit-feedback ALS (Hu et al.): ratings become confidences 1+alpha*r over unit preferences (host platform only)")
	alpha := flag.Float64("alpha", 40, "confidence scale for -implicit")
	solverID := flag.String("solver", "chol", "per-row linear solver: chol (direct Cholesky), ldl, or cg (matrix-free conjugate gradient)")
	cgIters := flag.Int("cg-iters", 3, "CG iterations per row solve (with -solver cg)")
	blockSize := flag.Int("block-size", 0, "iALS++ block-coordinate update width (with -implicit and -solver chol; 0 = full-width direct solve)")
	ckptDir := flag.String("checkpoint-dir", "", "write crash-safe training checkpoints into this directory")
	ckptEvery := flag.Int("checkpoint-every", 1, "iterations between checkpoints")
	ckptKeep := flag.Int("checkpoint-keep", 3, "newest checkpoints to retain (older ones are garbage-collected)")
	ckptPrec := flag.String("checkpoint-precision", "f32", "factor precision for written checkpoints: f32, f16 or i8; quantized checkpoints are 2-4x smaller and hot-swap straight into alsserve -precision, but cannot seed -resume")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (fresh start when none exists)")
	strict := flag.Bool("strict-numerics", false, "fail fast on the first numerical fault instead of climbing the recovery ladder (host platform)")
	chaosSpec := flag.String("chaos", "", "inject deterministic numerical faults, e.g. nan=1,inf=1,gram=2,fail=1,blowup=2,seed=7 (host platform; tests the resilience layer)")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics, /runinfo and /debug/pprof on this address during training (e.g. :9090)")
	debugLinger := flag.Duration("debug-linger", 0, "keep the -debug-addr server up this long after training finishes (for scraping short runs)")
	traceOut := flag.String("trace-out", "", "write the run as a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	eventsOut := flag.String("events-out", "", "write the structured run-event log (JSONL) to this file")
	workers := flag.Int("workers", 0, "fork this many worker processes for data-parallel distributed training (host platform only; the model stays bit-identical to a single-process run; 0 = in-process)")
	threads := flag.Int("threads", 0, "solver goroutines per distributed worker process (0 = GOMAXPROCS; only with -workers)")
	distRank := flag.Int("dist-rank", -1, "internal: run as distributed worker with this rank (set by the -workers coordinator)")
	distCoord := flag.String("dist-coord", "", "internal: coordinator address for -dist-rank")
	maxRespawns := flag.Int("max-respawns", 3, "with -workers: total failed-worker respawns before the run elastically downscales to the survivors (negative disables respawning)")
	heartbeatInterval := flag.Duration("heartbeat-interval", time.Second, "with -workers: worker liveness heartbeat period (hung workers are detected after ~5x this; <0 disables)")
	roundTimeout := flag.Duration("round-timeout", 0, "with -workers: deadline for one gather round before the lagging workers are declared failed (0 = the 10-minute exchange default)")
	netChaos := flag.String("net-chaos", "", "with -workers: inject deterministic network faults into the exchange, e.g. sever=1:in:3,corrupt=0:out:2,delay=1:in:4:2s,seed=7 (tests the supervision layer)")
	traceSample := flag.Float64("trace-sample", 0, "with -workers: head-sample the run into a span trace — coordinator gather/broadcast spans plus each worker's compute/gather/broadcast spans shipped back over the exchange protocol; browse at -debug-addr's /debug/traces or export with -span-trace-out")
	spanTraceOut := flag.String("span-trace-out", "", "with -trace-sample: write the collected span trace as Chrome trace-event JSON to this file after training")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alstrain:", err)
		os.Exit(1)
	}
	if *distRank >= 0 {
		// Worker mode: everything (dataset spec, hyperparameters, variant)
		// arrives in the coordinator's config frame, not from our flags.
		if *distCoord == "" {
			fail(fmt.Errorf("-dist-rank needs -dist-coord"))
		}
		if err := shard.RunWorker(*distCoord, *distRank); err != nil {
			fail(err)
		}
		return
	}
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "alstrain:", err)
		}
	}()

	// The numerical guard rides along on every host run: with clean data it
	// never fires (and the hot path stays allocation-free), with poisoned
	// data it keeps the run alive — or, under -strict-numerics, makes it die
	// with a fault that names the iteration and row. Non-host platforms run
	// guardless as before; asking for -chaos or -strict-numerics there
	// surfaces core's typed unsupported error instead of silently ignoring
	// the flag.
	var gd *guard.Guard
	if *platform == "host" || *chaosSpec != "" || *strict {
		gd = guard.New(guard.Policy{Strict: *strict})
		if *chaosSpec != "" {
			ch, err := guard.ParseChaos(*chaosSpec)
			if err != nil {
				fail(err)
			}
			gd.Chaos = ch
		}
	}

	// The recorder is nil unless some observability output was requested, so
	// the default training path stays uninstrumented.
	var rec *obs.TrainRecorder
	if *debugAddr != "" || *traceOut != "" || *eventsOut != "" {
		rec = obs.NewTrainRecorder()
	}
	var tracer *rtrace.Tracer
	if *traceSample > 0 {
		if *workers <= 0 {
			fail(fmt.Errorf("-trace-sample traces the distributed exchange and needs -workers (single-process runs use -trace-out)"))
		}
		tracer = rtrace.New(rtrace.Config{Sample: *traceSample, Process: "alstrain"})
	}
	if *spanTraceOut != "" && tracer == nil {
		fail(fmt.Errorf("-span-trace-out needs -trace-sample"))
	}
	if *netChaos != "" && *workers <= 0 {
		fail(fmt.Errorf("-net-chaos injects faults into the distributed exchange and needs -workers"))
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		rec.Register(reg)
		if gd != nil {
			gd.Register(reg)
		}
		obs.RegisterProcessMetrics(reg)
		tracer.Register(reg)
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Registry: reg,
			RunInfo:  func() any { return rec.RunInfo() },
			Traces:   tracer.TracesHandler(),
			Slowest:  tracer.SlowestHandler(),
		})
		if err != nil {
			fail(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server listening on http://%s\n", dbg.Addr())
	}

	var ds *dataset.Dataset
	var userIDs, itemIDs []int64
	switch {
	case *input != "":
		if *compact {
			cd, err := dataset.LoadCompact(*input, *oneBased)
			if err != nil {
				fail(err)
			}
			ds = cd.Dataset
			userIDs = make([]int64, cd.Users.Len())
			for i := range userIDs {
				userIDs[i] = cd.Users.Orig(i)
			}
			itemIDs = make([]int64, cd.Items.Len())
			for i := range itemIDs {
				itemIDs[i] = cd.Items.Orig(i)
			}
		} else {
			var err error
			ds, err = dataset.Load(*input, *oneBased)
			if err != nil {
				fail(err)
			}
		}
	case *preset != "":
		p, err := dataset.PresetByName(*preset)
		if err != nil {
			fail(err)
		}
		ds = p.ScaledForBench(*scale).Generate(*seed)
	default:
		fail(fmt.Errorf("need -input or -preset"))
	}
	mx := ds.Matrix
	fmt.Printf("dataset: %s  m=%d n=%d nnz=%d\n", ds.Name, mx.Rows(), mx.Cols(), mx.NNZ())
	rec.SetMeta("alstrain", ds.Name, *k, *lambda, *iters)

	train := mx
	test := mx
	if *testFrac > 0 {
		tr, te, err := dataset.Split(mx, *testFrac, *seed+1)
		if err != nil {
			fail(err)
		}
		train, test = tr, te
	}
	if gd != nil && gd.Chaos.Active() {
		// Corrupt only the training matrix so the held-out RMSE measures
		// recovery against clean ground truth.
		gd.Chaos.Bind(train.Rows())
		ct, err := gd.Chaos.CorruptMatrix(train)
		if err != nil {
			fail(err)
		}
		train = ct
		fmt.Printf("chaos: %s\n", gd.Chaos)
	}

	ckPrec, err := quant.Parse(*ckptPrec)
	if err != nil {
		fail(err)
	}
	if ckPrec != quant.F32 && *resume {
		// A quantized checkpoint is lossy; resuming from it could not be
		// bit-identical, so core rejects it at load time — fail fast here.
		fail(fmt.Errorf("-checkpoint-precision %s does not compose with -resume (quantized checkpoints are lossy)", ckPrec))
	}

	solver, err := host.ParseSolver(*solverID)
	if err != nil {
		fail(err)
	}
	cfg := core.Config{
		K: *k, Lambda: float32(*lambda), Iterations: *iters, Seed: *seed,
		Platform: *platform, AutoVariant: *auto, UseRecommended: *variantID == "",
		WeightedLambda: *weighted,
		Implicit:       *implicit, Alpha: float32(*alpha), Solver: solver,
		CGIters: *cgIters, BlockSize: *blockSize,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
		CheckpointKeep: *ckptKeep, CheckpointPrecision: ckPrec,
		Resume: *resume, Obs: rec,
		Guard: gd,
	}
	if *variantID != "" {
		v, err := variant.ParseID(*variantID)
		if err != nil {
			fail(err)
		}
		cfg.Variant = v
	}

	// Graceful shutdown: SIGINT/SIGTERM closes the Interrupt channel; the
	// run stops at the next iteration boundary after writing a final
	// checkpoint, so nothing computed so far is lost.
	ictx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	cfg.Interrupt = ictx.Done()
	failOrResumable := func(err error) {
		if !errors.Is(err, shard.ErrInterrupted) && !errors.Is(err, core.ErrInterrupted) {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "alstrain:", err)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "alstrain: interrupted run is resumable: rerun with the same flags plus -resume (checkpoints in %s)\n", *ckptDir)
		} else {
			fmt.Fprintln(os.Stderr, "alstrain: run stopped at an iteration boundary; add -checkpoint-dir to make interrupted runs resumable")
		}
		os.Exit(3)
	}

	var model *core.Model
	if *workers > 0 {
		// Distributed data-parallel training: fork -workers copies of this
		// binary as rank workers; they reload the identical dataset from the
		// spec and exchange factor shards through this coordinator.
		switch {
		case *platform != "host":
			fail(fmt.Errorf("-workers trains on the host; -platform %s is a simulated device", *platform))
		case *chaosSpec != "" || *strict:
			fail(fmt.Errorf("-workers does not compose with -chaos/-strict-numerics (the guard is per-process)"))
		case *auto:
			fail(fmt.Errorf("-workers needs a fixed variant; -auto-variant would let workers disagree"))
		case *implicit || solver != host.SolverCholesky || *blockSize != 0:
			fail(fmt.Errorf("-workers does not compose with -implicit/-solver/-block-size: the distributed path trains the explicit objective with the direct solver"))
		}
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		dcfg := shard.TrainerConfig{
			Workers: *workers,
			K:       *k, Lambda: float32(*lambda), Iterations: *iters, Seed: *seed,
			WeightedLambda: *weighted, UseRecommended: *variantID == "",
			Threads: *threads,
			Data: shard.DataSpec{
				Preset: *preset, Scale: *scale,
				Input: *input, OneBased: *oneBased, Compact: *compact,
				TestFrac: *testFrac, Seed: *seed,
			},
			CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
			CheckpointKeep: *ckptKeep, CheckpointPrecision: ckPrec,
			Resume:            *resume,
			Registry:          reg,
			Tracer:            tracer,
			HeartbeatInterval: *heartbeatInterval,
			RoundTimeout:      *roundTimeout,
			Interrupt:         ictx.Done(),
			Logf:              log.Printf,
			Spawn: func(rank int, addr string) (func(), error) {
				cmd := exec.Command(exe, "-dist-rank", strconv.Itoa(rank), "-dist-coord", addr)
				cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
				if err := cmd.Start(); err != nil {
					return nil, err
				}
				// The PID line lets operators (and the fault-injection smoke
				// test) target a specific worker.
				fmt.Printf("worker %d pid %d\n", rank, cmd.Process.Pid)
				return func() { cmd.Process.Kill(); cmd.Wait() }, nil
			},
		}
		if *maxRespawns <= 0 {
			dcfg.MaxRespawns = -1 // 0 and negative both mean "never respawn"
		} else {
			dcfg.MaxRespawns = *maxRespawns
		}
		if *netChaos != "" {
			plan, err := chaosnet.ParsePlan(*netChaos)
			if err != nil {
				fail(err)
			}
			dcfg.NetChaos = plan
		}
		if *variantID != "" {
			dcfg.Variant = cfg.Variant
		}
		m, dinfo, err := shard.Train(train, dcfg)
		if err != nil {
			failOrResumable(err)
		}
		model = m
		if dinfo.ResumedFrom > 0 {
			fmt.Printf("resumed from checkpoint at iteration %d\n", dinfo.ResumedFrom)
		}
		if dinfo.Failures > 0 {
			fmt.Printf("supervision: %d worker failures, %d respawns, %d downscales (finished on %d workers)\n",
				dinfo.Failures, dinfo.Respawns, dinfo.Downscales, dinfo.FinalWorkers)
		}
		fmt.Printf("trained on host with %s: %.4fs (wall-clock, %d worker processes)\n",
			dinfo.Variant, dinfo.Seconds, dinfo.Workers)
		fmt.Printf("coordinator exchange traffic: %d bytes\n", dinfo.BroadcastBytes)
		if tracer != nil {
			recorded, dropped := tracer.SpanCount()
			fmt.Printf("trace: %d spans recorded (%d dropped)\n", recorded, dropped)
			if *spanTraceOut != "" {
				if err := writeObsFile(*spanTraceOut, tracer.WriteChromeTrace); err != nil {
					fail(err)
				}
				fmt.Printf("span trace written to %s\n", *spanTraceOut)
			}
		}
	} else {
		m, info, err := core.Train(train, cfg)
		if err != nil {
			failOrResumable(err)
		}
		model = m
		if info.ResumedFrom > 0 {
			fmt.Printf("resumed from checkpoint at iteration %d\n", info.ResumedFrom)
		}
		kindLabel := "wall-clock"
		if info.Simulated {
			kindLabel = "simulated"
		}
		fmt.Printf("trained on %s with %s: %.4fs (%s)\n", info.Platform, info.Variant, info.Seconds, kindLabel)
		if gd != nil {
			if s := gd.Summary(); s != "" {
				fmt.Printf("guard: %s\n", s)
			}
		}
		if info.Simulated {
			fmt.Printf("stage breakdown: S1=%.4fs S2=%.4fs S3=%.4fs\n",
				info.StageSeconds[0], info.StageSeconds[1], info.StageSeconds[2])
		}
	}
	model.UserIDs, model.ItemIDs = userIDs, itemIDs
	if *version != "" {
		model.Meta.Version = *version
	}
	if *implicit {
		// RMSE against raw ratings is meaningless for an implicit model (it
		// predicts preference ≈ 1 on observed pairs); report ranking quality.
		if *testFrac > 0 {
			prec10, recall10 := metrics.PrecisionRecallAtN(train.R, test.R, model.X, model.Y, 10, 0)
			fmt.Printf("test precision@10: %.4f  recall@10: %.4f (%.0f%% held out)\n",
				prec10, recall10, *testFrac*100)
		}
	} else {
		fmt.Printf("train RMSE: %.4f\n", model.RMSE(train.R))
		if *testFrac > 0 {
			fmt.Printf("test  RMSE: %.4f (%.0f%% held out)\n", model.RMSE(test.R), *testFrac*100)
		}
	}

	if *out != "" {
		// Atomic (temp + fsync + rename) so a crash mid-save cannot leave a
		// torn model file for alsserve to pick up.
		if err := checkpoint.WriteFileAtomic(checkpoint.OS, *out, model.Save); err != nil {
			fail(err)
		}
		fmt.Printf("model written to %s\n", *out)
	}

	if *traceOut != "" {
		if err := writeObsFile(*traceOut, rec.WriteChromeTrace); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *eventsOut != "" {
		if err := writeObsFile(*eventsOut, rec.WriteJSONL); err != nil {
			fail(err)
		}
		fmt.Printf("event log written to %s\n", *eventsOut)
	}
	if *debugAddr != "" && *debugLinger > 0 {
		fmt.Printf("debug server lingering for %s\n", *debugLinger)
		time.Sleep(*debugLinger)
	}
}

func writeObsFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
