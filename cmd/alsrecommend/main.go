// alsrecommend loads a model trained by alstrain plus the rating file it
// was trained on, and prints top-N recommendations for one or more users.
// Models trained with -compact carry their ID tables, so users are
// addressed — and items reported — by their original external IDs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
)

func main() {
	modelPath := flag.String("model", "", "model file written by alstrain -out")
	ratings := flag.String("ratings", "", "training rating file (to exclude already-rated items)")
	oneBased := flag.Bool("one-based", true, "IDs in the rating file start at 1")
	users := flag.String("users", "0", "comma-separated user IDs (external IDs for compact models)")
	n := flag.Int("n", 10, "recommendations per user")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsrecommend:", err)
		os.Exit(1)
	}
	if *modelPath == "" || *ratings == "" {
		fail(fmt.Errorf("need -model and -ratings"))
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fail(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	mx, err := core.AlignRatings(model, *ratings, *oneBased)
	if err != nil {
		fail(err)
	}

	for _, tok := range strings.Split(*users, ",") {
		orig, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad user id %q", tok))
		}
		u, ok := model.UserIndex(orig)
		if !ok {
			fail(fmt.Errorf("user %d not in the model", orig))
		}
		top := model.Recommend(mx.R, u, *n)
		fmt.Printf("user %d (rated %d items):\n", orig, mx.R.RowNNZ(u))
		for rank, item := range top {
			fmt.Printf("  %2d. item %-8d score %.3f\n", rank+1, model.ItemLabel(item), model.Predict(u, item))
		}
	}
}
