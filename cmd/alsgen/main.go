// alsgen generates a synthetic rating dataset from one of the Table I
// presets (shape-matched to Movielens10M / Netflix / YahooMusic R1 / R4)
// and writes it as text triples or as the compact binary CSR container.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

func main() {
	preset := flag.String("preset", "YMR4", "MVLE, NTFX, YMR1 or YMR4")
	scale := flag.Float64("scale", 1.0, "scale factor; <1 shrinks the dataset (bench scaling)")
	densityPreserving := flag.Bool("density-preserving", false, "use density-preserving scaling instead of degree-preserving bench scaling")
	seed := flag.Int64("seed", 2017, "generator seed")
	out := flag.String("out", "", "output path (.txt for triples, .bin for binary CSR); default stdout text")
	stats := flag.Bool("stats", true, "print degree statistics to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsgen:", err)
		os.Exit(1)
	}

	p, err := dataset.PresetByName(*preset)
	if err != nil {
		fail(err)
	}
	if *scale < 1 {
		if *densityPreserving {
			p = p.Scaled(*scale)
		} else {
			p = p.ScaledForBench(*scale)
		}
	}
	ds := p.Generate(*seed)
	mx := ds.Matrix

	if *stats {
		rs := sparse.RowStats(mx.R)
		cs := sparse.ColStats(mx.C)
		fmt.Fprintf(os.Stderr, "%s: m=%d n=%d nnz=%d\n", p.Name, mx.Rows(), mx.Cols(), mx.NNZ())
		fmt.Fprintf(os.Stderr, "rows: %s\ncols: %s\n", rs, cs)
		fmt.Fprintf(os.Stderr, "warp imbalance (32 lanes): %.2f\n", sparse.WarpImbalance(mx.R, 32))
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(*out, ".bin") {
		err = sparse.WriteBinary(w, mx.R)
	} else {
		err = sparse.WriteTriples(w, mx.R)
	}
	if err != nil {
		fail(err)
	}
}
