// alseval evaluates a model trained by alstrain against a rating file:
// RMSE/MAE on the given ratings and, with -train, ranking quality
// (precision/recall@N) of the model's top-N lists against them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	modelPath := flag.String("model", "", "model file written by alstrain -out")
	testPath := flag.String("test", "", "rating file to evaluate against")
	trainPath := flag.String("train", "", "training rating file (enables precision/recall@N; its items are excluded from top-N)")
	oneBased := flag.Bool("one-based", true, "IDs in the rating files start at 1")
	n := flag.Int("n", 10, "top-N size for ranking metrics")
	relThresh := flag.Float64("relevant", 4.0, "minimum test rating counted as relevant")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alseval:", err)
		os.Exit(1)
	}
	if *modelPath == "" || *testPath == "" {
		fail(fmt.Errorf("need -model and -test"))
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fail(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	test, err := core.AlignRatings(model, *testPath, *oneBased)
	if err != nil {
		fail(err)
	}

	fmt.Printf("model: k=%d users=%d items=%d\n", model.K, model.X.Rows, model.Y.Rows)
	fmt.Printf("test ratings: %d\n", test.NNZ())
	fmt.Printf("RMSE: %.4f\n", model.RMSE(test.R))
	fmt.Printf("MAE:  %.4f\n", model.MAE(test.R))

	if *trainPath != "" {
		train, err := core.AlignRatings(model, *trainPath, *oneBased)
		if err != nil {
			fail(err)
		}
		p, r := metrics.PrecisionRecallAtN(train.R, test.R, model.X, model.Y, *n, float32(*relThresh))
		fmt.Printf("precision@%d: %.4f\n", *n, p)
		fmt.Printf("recall@%d:    %.4f\n", *n, r)
	}
}
