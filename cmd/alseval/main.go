// alseval evaluates a model trained by alstrain against a rating file:
// RMSE/MAE on the given ratings and, with -train, ranking quality
// (precision/recall@N) of the model's top-N lists against them.
//
// With -compare-precisions it additionally quantizes the item factors to
// f16 and i8 — the same per-row symmetric encoding alsserve -precision
// uses — and reports, per precision, the accuracy cost of serving
// compressed: RMSE/MAE deltas, precision/recall@N deltas (with -train),
// and the mean top-N overlap against the float32 ranking.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/sparse"
)

func main() {
	modelPath := flag.String("model", "", "model file written by alstrain -out")
	testPath := flag.String("test", "", "rating file to evaluate against")
	trainPath := flag.String("train", "", "training rating file (enables precision/recall@N; its items are excluded from top-N)")
	oneBased := flag.Bool("one-based", true, "IDs in the rating files start at 1")
	n := flag.Int("n", 10, "top-N size for ranking metrics")
	relThresh := flag.Float64("relevant", 4.0, "minimum test rating counted as relevant")
	implicit := flag.Bool("implicit", false, "evaluate an implicit-feedback model: skip RMSE/MAE (preferences, not ratings, are predicted) and count every held-out rating as relevant")
	comparePrec := flag.Bool("compare-precisions", false, "also evaluate the f16- and i8-quantized item factors and report accuracy deltas vs float32")
	flag.Parse()
	if *implicit {
		*relThresh = 0
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alseval:", err)
		os.Exit(1)
	}
	if *modelPath == "" || *testPath == "" {
		fail(fmt.Errorf("need -model and -test"))
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fail(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	test, err := core.AlignRatings(model, *testPath, *oneBased)
	if err != nil {
		fail(err)
	}

	fmt.Printf("model: k=%d users=%d items=%d\n", model.K, model.X.Rows, model.Y.Rows)
	fmt.Printf("test ratings: %d\n", test.NNZ())
	var rmse32, mae32 float64
	if *implicit {
		if *trainPath == "" {
			fail(fmt.Errorf("-implicit needs -train: implicit models are evaluated by ranking, which excludes training items"))
		}
	} else {
		rmse32 = model.RMSE(test.R)
		mae32 = model.MAE(test.R)
		fmt.Printf("RMSE: %.4f\n", rmse32)
		fmt.Printf("MAE:  %.4f\n", mae32)
	}

	var train *sparse.Matrix
	var p32, r32 float64
	if *trainPath != "" {
		train, err = core.AlignRatings(model, *trainPath, *oneBased)
		if err != nil {
			fail(err)
		}
		p32, r32 = metrics.PrecisionRecallAtN(train.R, test.R, model.X, model.Y, *n, float32(*relThresh))
		fmt.Printf("precision@%d: %.4f\n", *n, p32)
		fmt.Printf("recall@%d:    %.4f\n", *n, r32)
	}

	if !*comparePrec {
		return
	}
	var trainR *sparse.CSR
	if train != nil {
		trainR = train.R
	}
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		qy, err := quant.EncodeDense(model.Y, prec)
		if err != nil {
			fail(fmt.Errorf("quantizing item factors to %v: %w", prec, err))
		}
		// Every metric below scores against the dequantized factors — the
		// exact values the fused serving kernels reproduce row by row.
		yd := qy.Decode()
		fmt.Printf("\n%v: %d bytes (%.2fx smaller), max |dequant err| %.3g\n",
			prec, qy.Bytes(), float64(4*len(model.Y.Data))/float64(qy.Bytes()), qy.MaxAbsErr)
		if !*implicit {
			rmse := metrics.RMSE(test.R, model.X, yd)
			mae := metrics.MAE(test.R, model.X, yd)
			fmt.Printf("  RMSE: %.4f (%+.5f vs f32)\n", rmse, rmse-rmse32)
			fmt.Printf("  MAE:  %.4f (%+.5f vs f32)\n", mae, mae-mae32)
		}
		if trainR != nil {
			p, r := metrics.PrecisionRecallAtN(trainR, test.R, model.X, yd, *n, float32(*relThresh))
			fmt.Printf("  precision@%d: %.4f (%+.4f vs f32)\n", *n, p, p-p32)
			fmt.Printf("  recall@%d:    %.4f (%+.4f vs f32)\n", *n, r, r-r32)
		}
		fmt.Printf("  overlap@%d:   %.4f (mean fraction of the f32 top-%d reproduced)\n",
			*n, meanOverlap(trainR, model, qy, *n), *n)
	}
}

// meanOverlap averages, over all users, |f32 top-N ∩ quantized top-N| / N:
// the fraction of each user's float32 ranking the quantized scan serves.
// Rated items are excluded from both sides when a training matrix is given.
func meanOverlap(train *sparse.CSR, m *core.Model, qy *quant.Matrix, n int) float64 {
	users := m.X.Rows
	if train == nil {
		empty, err := sparse.NewCOO(users, m.Y.Rows).ToCSR()
		if err != nil {
			panic(err)
		}
		train = empty
	}
	var sum float64
	for u := 0; u < users; u++ {
		rated := make(map[int]bool)
		cols, _ := train.Row(u)
		for _, c := range cols {
			rated[int(c)] = true
		}
		excluded := func(i int) bool { return rated[i] }
		ref := metrics.TopN(train, m.X, m.Y, u, n)
		in := make(map[int]bool, len(ref))
		for _, it := range ref {
			in[it] = true
		}
		hits := 0
		for _, s := range qy.TopN(m.X.Row(u), excluded, n) {
			if in[s.Item] {
				hits++
			}
		}
		if len(ref) > 0 {
			sum += float64(hits) / float64(len(ref))
		}
	}
	return sum / float64(users)
}
