// alsbench reproduces the paper's tables and figures on the simulated
// devices and prints them in a readable form.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run: table1,fig1,fig6,fig7,fig8,fig9,fig10,tune,ksweep,convergence,multigpu,cluster or all (comma-separated)")
	scale := flag.Float64("scale", 1, "extra scale factor on the per-dataset defaults")
	iters := flag.Int("iters", 5, "ALS iterations")
	k := flag.Int("k", 10, "latent factor")
	lambda := flag.Float64("lambda", 0.1, "regularization")
	seed := flag.Int64("seed", 2017, "dataset + init seed")
	capture := flag.String("capture", "", "run the host variant bench capture and write the JSON record to this file (e.g. BENCH_2.json)")
	captureModes := flag.String("capture-modes", "", "run the host training-mode bench capture (explicit vs implicit x solver x block size) and write the JSON record to this file (e.g. BENCH_8.json)")
	captureScale := flag.Float64("capture-scale", 0.01, "MVLE bench scale for -capture/-capture-modes")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics (process health) and /debug/pprof on this address while the experiments run")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	flag.Parse()

	s := experiments.Defaults()
	s.Scale = *scale
	s.Iterations = *iters
	s.K = *k
	s.Lambda = float32(*lambda)
	s.Seed = *seed

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsbench:", err)
		os.Exit(1)
	}
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "alsbench:", err)
		}
	}()
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		dbg, err := obs.StartDebug(*debugAddr, reg, nil)
		if err != nil {
			fail(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server listening on http://%s\n", dbg.Addr())
	}
	if *capture != "" {
		c, err := experiments.CaptureHostBench(s, *captureScale)
		if err != nil {
			fail(err)
		}
		c.Fprint(os.Stdout)
		f, err := os.Create(*capture)
		if err != nil {
			fail(err)
		}
		if err := c.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("capture written to %s\n", *capture)
		return
	}
	if *captureModes != "" {
		c, err := experiments.CaptureModeBench(s, *captureScale)
		if err != nil {
			fail(err)
		}
		c.Fprint(os.Stdout)
		f, err := os.Create(*captureModes)
		if err != nil {
			fail(err)
		}
		if err := c.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("capture written to %s\n", *captureModes)
		return
	}
	if all || want["table1"] {
		t, err := experiments.Table1(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["fig1"] {
		t, err := experiments.Fig1(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["fig6"] {
		ts, err := experiments.Fig6(s)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			t.Fprint(os.Stdout)
		}
	}
	if all || want["fig7"] {
		t, err := experiments.Fig7(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["fig8"] {
		t, err := experiments.Fig8(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["fig9"] {
		t, err := experiments.Fig9(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["tune"] {
		// The hotspot-guided tuning walk of Sec. V-C (Fig. 8's narrative),
		// on Netflix/K20c.
		ds := dataset.Netflix.ScaledForBench(0.002 * s.Scale).Generate(s.Seed)
		steps, final, err := trace.Tune(ds.Matrix, kernels.Config{
			Device: device.K20c(), K: s.K, Lambda: s.Lambda,
			Iterations: s.Iterations, Seed: s.Seed,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("== tune: hotspot-guided optimization (Netflix on K20c) ==")
		for _, st := range steps {
			fmt.Println("  " + st.String())
		}
		fmt.Printf("  final spec: %s\n\n", final.Name())
	}
	if all || want["ksweep"] {
		t, err := experiments.KSweep(s, nil)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if want["convergence"] {
		// Extension (not part of -experiment all: it retrains many times).
		t, err := experiments.Convergence(s, 10)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if want["multigpu"] {
		t, err := experiments.MultiGPU(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if want["cluster"] {
		t, err := experiments.Cluster(s)
		if err != nil {
			fail(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || want["fig10"] {
		ts, err := experiments.Fig10(s)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			t.Fprint(os.Stdout)
		}
	}
}
