// alsserve serves top-N and fold-in recommendations from a model trained by
// alstrain, with atomic hot-swap (POST /admin/swap) so retraining and
// serving compose without downtime. With -watch it follows a training
// run's checkpoint directory (alstrain -checkpoint-dir) and hot-swaps each
// new checkpoint in as it lands, rejecting corrupt or torn files while the
// previous snapshot keeps serving. Endpoints:
//
//	GET  /v1/recommend?user=U&n=N   top-N unrated items for a known user
//	POST /v1/foldin                 fold a cold-start user's ratings in, top-N
//	POST /admin/swap                load a new model file and swap atomically
//	GET  /v1/model                  live model identity and dimensions
//	GET  /metrics                   Prometheus metrics
//	GET  /healthz                   liveness (503 until a model is loaded)
//
// With -debug-addr a second listener adds /debug/pprof, /healthz
// (process liveness) and /readyz (model installed, and with
// -max-staleness the watched checkpoint is fresh enough).
//
// With -shard i/N the process becomes shard replica i of an N-way fleet:
// it keeps only its static range of the item factors, answers
// /v1/recommend over that slice (global item indices preserved), and adds
// GET /readyz plus the /shard/v1/* partial endpoints the alsfront
// scatter-gather frontend fans out to. Fold-in requests belong on the
// frontend and are rejected with 501 here. -watch composes: each shard
// watches the same checkpoint directory and hot-swaps only its slice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/rtrace"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	modelPath := flag.String("model", "", "model file written by alstrain -out (required)")
	ratings := flag.String("ratings", "", "training rating file for rated-item exclusion (optional)")
	oneBased := flag.Bool("one-based", true, "IDs in the rating file start at 1")
	version := flag.String("version", "", "version label for the initial model (default: model meta, then v<seq>)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scoring pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max concurrent requests before shedding with 429")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	cacheSize := flag.Int("cache", 1024, "response cache entries (negative disables)")
	maxN := flag.Int("max-n", 100, "largest accepted n per request")
	watch := flag.String("watch", "", "checkpoint directory to follow: the newest valid checkpoint is hot-swapped in as training writes it (-model becomes optional)")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "poll period for -watch")
	debugAddr := flag.String("debug-addr", "", "serve the same metrics plus process health, /healthz, /readyz and /debug/pprof on a second address (keeps profiling off the public listener)")
	maxStale := flag.Duration("max-staleness", 0, "readiness bound for -debug-addr's /readyz: fail once the last checkpoint installed by -watch is older than this (0 disables the age check)")
	shardSpec := flag.String("shard", "", "serve as shard i/N of an item-partitioned fleet (e.g. 0/3): only rows [i*items/N, (i+1)*items/N) of the item factors are kept, and the /shard/v1/* endpoints for alsfront are enabled")
	precision := flag.String("precision", "f32", "scoring precision for the item factors: f32, f16 or i8; quantized precisions compress each swapped-in model once per swap and score with the fused dequantizing kernels (fold-in still solves in float32)")
	traceSample := flag.Float64("trace-sample", 0, "head-sample this fraction of requests into per-request span traces (0 disables tracing entirely; inbound traceparent headers always continue a sampled trace); browse them at -debug-addr's /debug/traces and /debug/slowest")
	slowLog := flag.Duration("slow-log", 0, "log requests at or above this duration with their trace ID (0 disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsserve:", err)
		os.Exit(1)
	}
	if *modelPath == "" && *watch == "" {
		fail(fmt.Errorf("need -model or -watch"))
	}

	prec, err := quant.Parse(*precision)
	if err != nil {
		fail(err)
	}

	var tracer *rtrace.Tracer
	if *traceSample > 0 {
		tracer = rtrace.New(rtrace.Config{Sample: *traceSample, Process: "alsserve"})
	}
	srv := serve.New(serve.Config{
		Workers: *workers, Queue: *queue, Timeout: *timeout,
		CacheSize: *cacheSize, MaxN: *maxN,
		Tracer: tracer, SlowLog: *slowLog,
	})
	defer srv.Close()
	tracer.Register(srv.Telemetry().Registry())
	srv.SetPrecision(prec)
	var rep *shard.Replica
	if *shardSpec != "" {
		idx, of, err := shard.ParseSpec(*shardSpec)
		if err != nil {
			fail(err)
		}
		rep, err = shard.NewReplica(srv, shard.ReplicaConfig{
			Index: idx, Count: of, MaxStaleness: *maxStale,
		})
		if err != nil {
			fail(err)
		}
	}
	if *debugAddr != "" {
		reg := srv.Telemetry().Registry()
		obs.RegisterProcessMetrics(reg)
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Registry: reg,
			Ready:    serve.Readiness(srv, *maxStale, nil),
			Traces:   tracer.TracesHandler(),
			Slowest:  tracer.SlowestHandler(),
		})
		if err != nil {
			fail(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server listening on http://%s\n", dbg.Addr())
	}
	if *modelPath != "" {
		m, rated, err := serve.LoadSnapshotFiles(*modelPath, *ratings, *oneBased)
		if err != nil {
			fail(err)
		}
		if rep != nil {
			sn := rep.Swap(m, rated, *version)
			fmt.Printf("alsserve: model %s (seq %d): shard %s holds items [%d,%d) of %d, %d users, k=%d\n",
				sn.Version, sn.Seq, *shardSpec, sn.ItemOffset, sn.ItemOffset+sn.Model.Y.Rows, sn.ItemTotal, m.X.Rows, m.K)
		} else {
			sn := srv.Swap(m, rated, *version)
			fmt.Printf("alsserve: model %s (seq %d): %d users x %d items, k=%d, precision=%s\n",
				sn.Version, sn.Seq, m.X.Rows, m.Y.Rows, m.K, sn.Precision)
		}
	}

	handler := srv.Handler()
	if rep != nil {
		handler = rep.Handler()
	}
	hs := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch != "" {
		wcfg := serve.WatcherConfig{
			Dir: *watch, Interval: *watchInterval,
			OnSwap: func(sn *serve.Snapshot) {
				fmt.Printf("alsserve: swapped in %s (seq %d) from %s\n", sn.Version, sn.Seq, *watch)
			},
			OnReject: func(path string, err error) {
				fmt.Fprintf(os.Stderr, "alsserve: rejected checkpoint %s: %v\n", path, err)
			},
		}
		if rep != nil {
			// Shard-sync: every replica watches the same checkpoint
			// directory and installs only its item slice of each model.
			wcfg.Transform = rep.Transform
		}
		if *watch != "" && *ratings != "" && *modelPath == "" {
			// Rated-item exclusion for watched checkpoints: checkpoints carry
			// dense indices, so load the ratings densely too.
			ds, err := dataset.Load(*ratings, *oneBased)
			if err != nil {
				fail(err)
			}
			wcfg.Rated = ds.Matrix.R
		}
		w := serve.NewWatcher(srv, wcfg)
		if _, err := w.Poll(); err != nil {
			fail(err)
		}
		go w.Run(ctx)
		fmt.Printf("alsserve: watching %s every %s\n", *watch, *watchInterval)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(lis) }()
	fmt.Printf("alsserve: listening on %s\n", lis.Addr())

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		fmt.Println("alsserve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fail(err)
		}
	}
}
