// alsload drives a running alsserve with a power-law user distribution (the
// datasets' hallmark skew, via dataset.ZipfSampler) and reports throughput
// and latency percentiles — the serving-side benchmark companion to the
// training-side figures. A fraction of traffic can exercise the fold-in
// path with synthetic cold-start payloads.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
)

type modelInfo struct {
	Version string `json:"version"`
	Users   int    `json:"users"`
	Items   int    `json:"items"`
	K       int    `json:"k"`
}

type result struct {
	latencies []time.Duration
	codes     map[int]int
	errors    int
}

func main() {
	base := flag.String("addr", "http://127.0.0.1:8080", "base URL of a running alsserve")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	n := flag.Int("n", 10, "recommendations per request")
	skew := flag.Float64("skew", 0.85, "Zipf exponent of the user distribution")
	seed := flag.Int64("seed", 1, "sampler seed")
	foldinFrac := flag.Float64("foldin", 0, "fraction of requests using the fold-in path")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsload:", err)
		os.Exit(1)
	}

	client := &http.Client{Timeout: *timeout}
	info, err := fetchModel(client, *base)
	if err != nil {
		fail(fmt.Errorf("discovering model (is alsserve running?): %w", err))
	}
	fmt.Printf("alsload: target %s serving %s: %d users x %d items (k=%d)\n",
		*base, info.Version, info.Users, info.Items, info.K)
	fmt.Printf("alsload: %d workers, %v, n=%d, user skew %.2f, fold-in %.0f%%\n",
		*concurrency, *duration, *n, *skew, *foldinFrac*100)

	deadline := time.Now().Add(*duration)
	results := make([]result, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = drive(client, *base, info, deadline, driveOpts{
				n: *n, skew: *skew, seed: *seed + int64(w)*7919, foldin: *foldinFrac,
			})
		}()
	}
	wg.Wait()

	var all []time.Duration
	codes := map[int]int{}
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		for c, k := range r.codes {
			codes[c] += k
		}
		errors += r.errors
	}
	if len(all) == 0 {
		fail(fmt.Errorf("no requests completed"))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	total := len(all)
	fmt.Printf("\nrequests: %d  transport errors: %d\n", total, errors)
	keys := make([]int, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		fmt.Printf("  HTTP %d: %d\n", c, codes[c])
	}
	fmt.Printf("throughput: %.0f req/s\n", float64(total)/duration.Seconds())
	fmt.Printf("latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99)), ms(all[len(all)-1]))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

type driveOpts struct {
	n      int
	skew   float64
	seed   int64
	foldin float64
}

func drive(client *http.Client, base string, info *modelInfo, deadline time.Time, o driveOpts) result {
	users := dataset.NewZipfSampler(info.Users, o.skew, o.seed)
	rng := rand.New(rand.NewSource(o.seed + 1))
	res := result{codes: map[int]int{}}
	for time.Now().Before(deadline) {
		var (
			resp *http.Response
			err  error
		)
		start := time.Now()
		if rng.Float64() < o.foldin {
			resp, err = client.Post(base+"/v1/foldin", "application/json",
				bytes.NewReader(foldinPayload(rng, info.Items, o.n)))
		} else {
			resp, err = client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, users.Draw(), o.n))
		}
		if err != nil {
			res.errors++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.latencies = append(res.latencies, time.Since(start))
		res.codes[resp.StatusCode]++
	}
	return res
}

// foldinPayload fabricates a cold-start user: 5–25 distinct random items
// with ratings in [1,5].
func foldinPayload(rng *rand.Rand, items, n int) []byte {
	count := 5 + rng.Intn(21)
	if count > items {
		count = items
	}
	seen := map[int32]bool{}
	its := make([]int32, 0, count)
	ratings := make([]float32, 0, count)
	for len(its) < count {
		it := int32(rng.Intn(items))
		if seen[it] {
			continue
		}
		seen[it] = true
		its = append(its, it)
		ratings = append(ratings, float32(1+rng.Intn(5)))
	}
	body, _ := json.Marshal(map[string]any{"items": its, "ratings": ratings, "n": n})
	return body
}

func fetchModel(client *http.Client, base string) (*modelInfo, error) {
	resp, err := client.Get(base + "/v1/model")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /v1/model: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}
