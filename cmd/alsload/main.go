// alsload drives a running alsserve with a power-law user distribution (the
// datasets' hallmark skew, via dataset.ZipfSampler) and reports throughput
// and latency percentiles — the serving-side benchmark companion to the
// training-side figures. A fraction of traffic can exercise the fold-in
// path with synthetic cold-start payloads.
//
// With -targets it drives several servers at once — an alsfront frontend,
// or the shard replicas of a fleet directly — running the same worker pool
// against each and reporting per-target and aggregate req/s, which is how
// the shard-count throughput scaling figures are captured (-capture writes
// the stats as JSON).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
)

type modelInfo struct {
	Version   string `json:"version"`
	Users     int    `json:"users"`
	Items     int    `json:"items"`
	K         int    `json:"k"`
	Precision string `json:"precision"`
}

type result struct {
	latencies []time.Duration
	// stamps[i] is when request i completed, as an offset from the run
	// start — the raw material for the -timeline per-second series.
	stamps    []time.Duration
	errStamps []time.Duration
	codes     map[int]int
	errors    int
}

// stats summarizes one target's (or the whole run's) completed requests.
type stats struct {
	Target   string  `json:"target,omitempty"`
	Requests int     `json:"requests"`
	Errors   int     `json:"transport_errors"`
	RPS      float64 `json:"req_per_sec"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	Maxms    float64 `json:"max_ms"`
	codes    map[int]int
}

type captureOut struct {
	Label       string   `json:"label,omitempty"`
	Targets     []string `json:"targets"`
	DurationSec float64  `json:"duration_sec"`
	Concurrency int      `json:"concurrency_per_target"`
	N           int      `json:"n"`
	FoldinFrac  float64  `json:"foldin_frac"`
	// Precision is the scoring precision the targets report at /v1/model
	// ("mixed" if they disagree), making captures comparable across the
	// f32/f16/i8 serving dimension.
	Precision  string    `json:"precision,omitempty"`
	PerTarget  []stats   `json:"per_target"`
	Aggregate  stats     `json:"aggregate"`
	CapturedAt time.Time `json:"captured_at"`
}

func main() {
	base := flag.String("addr", "http://127.0.0.1:8080", "base URL of a running alsserve")
	targetsFlag := flag.String("targets", "", "comma-separated base URLs (an alsfront, or shard replicas directly) driven concurrently with -concurrency workers each; overrides -addr")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers per target")
	n := flag.Int("n", 10, "recommendations per request")
	skew := flag.Float64("skew", 0.85, "Zipf exponent of the user distribution")
	seed := flag.Int64("seed", 1, "sampler seed")
	foldinFrac := flag.Float64("foldin", 0, "fraction of requests using the fold-in path")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request client timeout")
	capture := flag.String("capture", "", "write per-target and aggregate stats as JSON to this file")
	label := flag.String("label", "", "free-form label stored in the -capture output")
	timeline := flag.String("timeline", "", "write a per-second JSONL series ({sec, requests, rps, p50_ms, p99_ms, errors}) to this file — throughput and tail latency over the run's lifetime, aggregated across all targets")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsload:", err)
		os.Exit(1)
	}

	targets := []string{*base}
	if *targetsFlag != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, strings.TrimRight(t, "/"))
			}
		}
		if len(targets) == 0 {
			fail(fmt.Errorf("-targets named no URLs"))
		}
	}

	client := &http.Client{Timeout: *timeout, Transport: &http.Transport{
		MaxIdleConnsPerHost: 2 * *concurrency,
	}}
	infos := make([]*modelInfo, len(targets))
	for i, t := range targets {
		info, err := fetchModel(client, t)
		if err != nil {
			fail(fmt.Errorf("discovering model at %s (is it running?): %w", t, err))
		}
		infos[i] = info
		fmt.Printf("alsload: target %s serving %s: %d users x %d items (k=%d, precision=%s)\n",
			t, info.Version, info.Users, info.Items, info.K, orF32(info.Precision))
	}
	precision := orF32(infos[0].Precision)
	for _, info := range infos[1:] {
		if orF32(info.Precision) != precision {
			precision = "mixed"
		}
	}
	fmt.Printf("alsload: %d workers/target x %d target(s), %v, n=%d, user skew %.2f, fold-in %.0f%%\n",
		*concurrency, len(targets), *duration, *n, *skew, *foldinFrac*100)

	startRun := time.Now()
	deadline := startRun.Add(*duration)
	results := make([][]result, len(targets))
	var wg sync.WaitGroup
	for ti := range targets {
		results[ti] = make([]result, *concurrency)
		for w := 0; w < *concurrency; w++ {
			ti, w := ti, w
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[ti][w] = drive(client, targets[ti], infos[ti], startRun, deadline, driveOpts{
					n: *n, skew: *skew,
					seed:   *seed + int64(ti)*104729 + int64(w)*7919,
					foldin: *foldinFrac,
				})
			}()
		}
	}
	wg.Wait()

	perTarget := make([]stats, len(targets))
	var all []time.Duration
	agg := stats{codes: map[int]int{}}
	for ti, t := range targets {
		var lats []time.Duration
		st := stats{Target: t, codes: map[int]int{}}
		for _, r := range results[ti] {
			lats = append(lats, r.latencies...)
			for c, k := range r.codes {
				st.codes[c] += k
				agg.codes[c] += k
			}
			st.Errors += r.errors
		}
		summarize(&st, lats, duration.Seconds())
		perTarget[ti] = st
		all = append(all, lats...)
		agg.Errors += st.Errors
	}
	if len(all) == 0 {
		fail(fmt.Errorf("no requests completed"))
	}
	summarize(&agg, all, duration.Seconds())

	for _, st := range perTarget {
		if len(targets) > 1 {
			fmt.Printf("\ntarget %s\n", st.Target)
			printStats(st)
		}
	}
	fmt.Printf("\nrequests: %d  transport errors: %d\n", agg.Requests, agg.Errors)
	printCodes(agg.codes)
	fmt.Printf("aggregate throughput: %.0f req/s across %d target(s)\n", agg.RPS, len(targets))
	fmt.Printf("latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		agg.P50ms, agg.P95ms, agg.P99ms, agg.Maxms)

	if *timeline != "" {
		if err := writeTimeline(*timeline, results); err != nil {
			fail(err)
		}
		fmt.Printf("per-second timeline written to %s\n", *timeline)
	}
	if *capture != "" {
		out := captureOut{
			Label: *label, Targets: targets,
			DurationSec: duration.Seconds(), Concurrency: *concurrency,
			N: *n, FoldinFrac: *foldinFrac, Precision: precision,
			PerTarget: perTarget, Aggregate: agg,
			CapturedAt: time.Now().UTC(),
		}
		body, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*capture, append(body, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("stats written to %s\n", *capture)
	}
}

// timelinePoint is one -timeline JSONL line: everything that completed in
// second [Sec, Sec+1) of the run, across all targets and workers.
type timelinePoint struct {
	Sec      int     `json:"sec"`
	Requests int     `json:"requests"`
	RPS      float64 `json:"rps"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	Errors   int     `json:"errors"`
}

// writeTimeline buckets every request by its completion second and writes
// one JSONL point per second — the time axis the aggregate stats flatten
// away, which is where warmup, cache-fill and degradation episodes show.
func writeTimeline(path string, results [][]result) error {
	bySec := map[int][]time.Duration{}
	errsBySec := map[int]int{}
	last := 0
	for _, rs := range results {
		for _, r := range rs {
			for i, stamp := range r.stamps {
				s := int(stamp / time.Second)
				bySec[s] = append(bySec[s], r.latencies[i])
				if s > last {
					last = s
				}
			}
			for _, stamp := range r.errStamps {
				s := int(stamp / time.Second)
				errsBySec[s]++
				if s > last {
					last = s
				}
			}
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for s := 0; s <= last; s++ {
		lats := bySec[s]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pt := timelinePoint{
			Sec: s, Requests: len(lats), RPS: float64(len(lats)),
			Errors: errsBySec[s],
		}
		if len(lats) > 0 {
			pt.P50ms = ms(lats[int(0.50*float64(len(lats)-1))])
			pt.P99ms = ms(lats[int(0.99*float64(len(lats)-1))])
		}
		if err := enc.Encode(pt); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func summarize(st *stats, lats []time.Duration, seconds float64) {
	st.Requests = len(lats)
	if seconds > 0 {
		st.RPS = float64(len(lats)) / seconds
	}
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	st.P50ms, st.P95ms, st.P99ms = ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99))
	st.Maxms = ms(lats[len(lats)-1])
}

func printStats(st stats) {
	fmt.Printf("  requests: %d  transport errors: %d  throughput: %.0f req/s\n",
		st.Requests, st.Errors, st.RPS)
	fmt.Printf("  latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		st.P50ms, st.P95ms, st.P99ms, st.Maxms)
}

func printCodes(codes map[int]int) {
	keys := make([]int, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		fmt.Printf("  HTTP %d: %d\n", c, codes[c])
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// orF32 defaults an absent precision (a pre-quantization server) to f32.
func orF32(p string) string {
	if p == "" {
		return "f32"
	}
	return p
}

type driveOpts struct {
	n      int
	skew   float64
	seed   int64
	foldin float64
}

func drive(client *http.Client, base string, info *modelInfo, startRun, deadline time.Time, o driveOpts) result {
	users := dataset.NewZipfSampler(info.Users, o.skew, o.seed)
	rng := rand.New(rand.NewSource(o.seed + 1))
	res := result{codes: map[int]int{}}
	for time.Now().Before(deadline) {
		var (
			resp *http.Response
			err  error
		)
		start := time.Now()
		if rng.Float64() < o.foldin {
			resp, err = client.Post(base+"/v1/foldin", "application/json",
				bytes.NewReader(foldinPayload(rng, info.Items, o.n)))
		} else {
			resp, err = client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, users.Draw(), o.n))
		}
		if err != nil {
			res.errors++
			res.errStamps = append(res.errStamps, time.Since(startRun))
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done := time.Now()
		res.latencies = append(res.latencies, done.Sub(start))
		res.stamps = append(res.stamps, done.Sub(startRun))
		res.codes[resp.StatusCode]++
	}
	return res
}

// foldinPayload fabricates a cold-start user: 5–25 distinct random items
// with ratings in [1,5].
func foldinPayload(rng *rand.Rand, items, n int) []byte {
	count := 5 + rng.Intn(21)
	if count > items {
		count = items
	}
	seen := map[int32]bool{}
	its := make([]int32, 0, count)
	ratings := make([]float32, 0, count)
	for len(its) < count {
		it := int32(rng.Intn(items))
		if seen[it] {
			continue
		}
		seen[it] = true
		its = append(its, it)
		ratings = append(ratings, float32(1+rng.Intn(5)))
	}
	body, _ := json.Marshal(map[string]any{"items": its, "ratings": ratings, "n": n})
	return body
}

func fetchModel(client *http.Client, base string) (*modelInfo, error) {
	resp, err := client.Get(base + "/v1/model")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /v1/model: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}
