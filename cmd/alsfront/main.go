// alsfront is the scatter-gather frontend for a fleet of alsserve shard
// replicas (alsserve -shard i/N). It fans each request out to every shard
// with a per-shard deadline, merges the partial top-N heaps into the exact
// single-process ranking, and degrades to the healthy shards' merged
// results when a shard is down or slow (flagged in the response and
// counted in als_shard_partial_total). Endpoints:
//
//	GET  /v1/recommend?user=U&n=N   merged top-N across all shards
//	POST /v1/foldin                 distributed fold-in: partial normal
//	                                equations gathered from every shard,
//	                                solved once, scored across the fleet
//	GET  /v1/model                  aggregated model identity
//	GET  /metrics                   frontend + fan-out Prometheus metrics
//	GET  /healthz                   process liveness
//	GET  /readyz                    503 while any shard is down
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rtrace"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	shards := flag.String("shards", "", "comma-separated shard replica base URLs in shard order, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082 (required)")
	shardTimeout := flag.Duration("shard-timeout", time.Second, "per-shard deadline for one fan-out leg; a shard that misses it degrades the response to the remaining shards")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "background health-check period")
	maxN := flag.Int("max-n", 100, "largest accepted n per request")
	maxFoldIn := flag.Int("max-foldin-items", 10000, "largest accepted fold-in rating count")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, /debug/pprof (and, with -trace-sample, /debug/traces and /debug/slowest) on a second address")
	traceSample := flag.Float64("trace-sample", 0, "head-sample this fraction of requests into span traces: one root per request with a child per shard hop, propagated to the shards over traceparent (0 disables)")
	slowLog := flag.Duration("slow-log", 0, "log requests at or above this duration with their trace ID (0 disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "alsfront:", err)
		os.Exit(1)
	}
	var urls []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, strings.TrimRight(s, "/"))
		}
	}
	if len(urls) == 0 {
		fail(fmt.Errorf("need -shards with at least one replica URL"))
	}

	var tracer *rtrace.Tracer
	if *traceSample > 0 {
		tracer = rtrace.New(rtrace.Config{Sample: *traceSample, Process: "alsfront"})
	}
	front, err := shard.NewFrontend(shard.FrontendConfig{
		Shards:         urls,
		ShardTimeout:   *shardTimeout,
		ProbeInterval:  *probeInterval,
		MaxN:           *maxN,
		MaxFoldInItems: *maxFoldIn,
		Tracer:         tracer,
		SlowLog:        *slowLog,
	})
	if err != nil {
		fail(err)
	}
	if *debugAddr != "" {
		reg := front.Registry()
		obs.RegisterProcessMetrics(reg)
		dbg, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{
			Registry: reg,
			Ready:    front.Ready,
			Traces:   tracer.TracesHandler(),
			Slowest:  tracer.SlowestHandler(),
		})
		if err != nil {
			fail(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server listening on http://%s\n", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go front.Run(ctx)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: front.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(lis) }()
	fmt.Printf("alsfront: listening on %s, fanning out to %d shard(s)\n", lis.Addr(), len(urls))
	for i, u := range urls {
		fmt.Printf("alsfront: shard %d -> %s\n", i, u)
	}

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		fmt.Println("alsfront: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fail(err)
		}
	}
}
