// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see EXPERIMENTS.md for the mapping) and measures
// the real host kernels. Figure benchmarks report the paper's headline
// comparisons as custom metrics (e.g. "speedup_vs_flat") so `go test
// -bench=.` output can be read against the paper directly.
//
// Simulated-device results are deterministic; wall-clock benches (Host*)
// measure this machine.
package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// benchSettings shrinks the default experiment scale so a full -bench=.
// sweep stays in the minutes range; shapes are scale-stable (the
// calibration tests in internal/experiments run at full bench scale).
func benchSettings() experiments.Settings {
	s := experiments.Defaults()
	s.Scale = 0.5
	s.Iterations = 2
	return s
}

// BenchmarkTable1Datasets regenerates Table I: synthetic datasets at the
// paper's shapes, with their degree statistics.
func BenchmarkTable1Datasets(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(s); err != nil {
			b.Fatal(err)
		}
	}
	dss := experiments.Datasets(s)
	b.ReportMetric(float64(dss[1].Matrix.NNZ()), "ntfx_nnz")
	b.ReportMetric(sparse.WarpImbalance(dss[1].Matrix.R, 32), "warp_imbalance")
}

// BenchmarkFig1BaselineCPUvsGPU regenerates Figure 1: the flat SAC'15
// baseline on the 16-core CPU vs the K20c. Metric: how many times slower
// the GPU is (paper: ~8.4x).
func BenchmarkFig1BaselineCPUvsGPU(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[1] // Netflix
	cpu, gpu := device.XeonE52670(), device.K20c()
	var ratio float64
	for i := 0; i < b.N; i++ {
		tc, err := kernels.Train(ds.Matrix, kernels.Config{Device: cpu, Spec: kernels.Baseline(),
			K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
		if err != nil {
			b.Fatal(err)
		}
		tg, err := kernels.Train(ds.Matrix, kernels.Config{Device: gpu, Spec: kernels.Baseline(),
			K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
		if err != nil {
			b.Fatal(err)
		}
		ratio = tg.Seconds() / tc.Seconds()
	}
	b.ReportMetric(ratio, "gpu_over_cpu_x")
}

// BenchmarkFig3RegisterKernel measures the Fig. 3 restructuring on the real
// host: the baseline k×k-scratch Gram kernel vs the k-strip register form
// vs the unrolled/vectorized form.
func BenchmarkFig3RegisterKernel(b *testing.B) {
	const k, n, omega = 10, 4096, 200
	rng := rand.New(rand.NewSource(1))
	y := make([]float32, n*k)
	for i := range y {
		y[i] = rng.Float32()
	}
	cols := make([]int32, omega)
	for i := range cols {
		cols[i] = int32(rng.Intn(n))
	}
	vals := make([]float32, omega)
	for i := range vals {
		vals[i] = rng.Float32() * 5
	}
	smat := make([]float32, k*k)
	gsum := make([]float32, k*k)
	packed := make([]float32, linalg.PackedLen(k))
	svec := make([]float32, k)
	b.Run("scatter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GramScatter(y, k, cols, smat, gsum)
		}
	})
	b.Run("register", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GramRegister(y, k, cols, smat)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GramUnrolled(y, k, cols, smat)
		}
	})
	// The fused forms also produce the S2 right-hand side in the same pass.
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GramRHSFused(y, k, cols, vals, packed, svec)
		}
	})
	b.Run("fused-unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GramRHSFusedUnrolled(y, k, cols, vals, packed, svec)
		}
	})
}

// BenchmarkFig6Variants regenerates Figure 6: the optimization ladder per
// device on the Netflix-shaped dataset.
func BenchmarkFig6Variants(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[1]
	for _, dev := range device.All() {
		for _, v := range variant.Ladder() {
			dev, v := dev, v
			b.Run(dev.Kind.String()+"/"+v.ID(), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					res, err := kernels.Train(ds.Matrix, kernels.Config{
						Device: dev, Spec: kernels.FromVariant(v),
						K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
					if err != nil {
						b.Fatal(err)
					}
					secs = res.Seconds()
				}
				b.ReportMetric(secs, "sim_seconds")
			})
		}
	}
}

// BenchmarkFig7Speedups regenerates Figure 7's three headline comparisons
// on the Netflix-shaped dataset (paper: 5.5x, 21.2x, 2.2-6.8x).
func BenchmarkFig7Speedups(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[1]
	cpu, gpu := device.XeonE52670(), device.K20c()
	var vsCPU, vsGPU, vsCuMF float64
	for i := 0; i < b.N; i++ {
		run := func(dev *device.Device, spec kernels.Spec) float64 {
			res, err := kernels.Train(ds.Matrix, kernels.Config{Device: dev, Spec: spec,
				K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds()
		}
		oursCPU := run(cpu, kernels.FromVariant(experiments.BestVariant(device.CPU)))
		oursGPU := run(gpu, kernels.FromVariant(experiments.BestVariant(device.GPU)))
		flatCPU := run(cpu, kernels.Baseline())
		flatGPU := run(gpu, kernels.Baseline())
		cm, err := baseline.TrainCuMF(ds.Matrix, baseline.CuMFConfig{Device: gpu,
			K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
		if err != nil {
			b.Fatal(err)
		}
		vsCPU, vsGPU, vsCuMF = flatCPU/oursCPU, flatGPU/oursGPU, cm.Seconds()/oursGPU
	}
	b.ReportMetric(vsCPU, "speedup_vs_sac15_cpu_x")
	b.ReportMetric(vsGPU, "speedup_vs_sac15_gpu_x")
	b.ReportMetric(vsCuMF, "speedup_vs_cumf_x")
}

// BenchmarkFig8StageBreakdown regenerates Figure 8: the S1/S2/S3 shares on
// Netflix/K20c at the final tuning stage.
func BenchmarkFig8StageBreakdown(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[1]
	var share [3]float64
	for i := 0; i < b.N; i++ {
		res, err := kernels.Train(ds.Matrix, kernels.Config{
			Device: device.K20c(),
			Spec:   kernels.Spec{S1Local: true, S1Register: true, S2Local: true},
			K:      s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
		if err != nil {
			b.Fatal(err)
		}
		share = res.Report.StageShare()
	}
	b.ReportMetric(share[0]*100, "s1_pct")
	b.ReportMetric(share[1]*100, "s2_pct")
	b.ReportMetric(share[2]*100, "s3_pct")
}

// BenchmarkFig9CrossPlatform regenerates Figure 9: best-variant times on
// the three devices; metrics are the slowdowns vs the CPU (paper: GPU 1.5x,
// MIC 4.1x).
func BenchmarkFig9CrossPlatform(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[0] // Movielens
	var gpuX, micX float64
	for i := 0; i < b.N; i++ {
		times := map[device.Kind]float64{}
		for _, dev := range device.All() {
			res, err := kernels.Train(ds.Matrix, kernels.Config{
				Device: dev, Spec: kernels.FromVariant(experiments.BestVariant(dev.Kind)),
				K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed})
			if err != nil {
				b.Fatal(err)
			}
			times[dev.Kind] = res.Seconds()
		}
		gpuX = times[device.GPU] / times[device.CPU]
		micX = times[device.MIC] / times[device.CPU]
	}
	b.ReportMetric(gpuX, "gpu_over_cpu_x")
	b.ReportMetric(micX, "mic_over_cpu_x")
}

// BenchmarkFig10BlockSize regenerates Figure 10: the work-group size sweep
// on the GPU (paper: best at 16/32 for k=10).
func BenchmarkFig10BlockSize(b *testing.B) {
	s := benchSettings()
	ds := experiments.Datasets(s)[1]
	for _, ws := range []int{8, 16, 32, 64, 128} {
		ws := ws
		b.Run("ws"+itoa(ws), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res, err := kernels.Train(ds.Matrix, kernels.Config{
					Device: device.K20c(), Spec: kernels.FromVariant(experiments.BestVariant(device.GPU)),
					K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed, GroupSize: ws})
				if err != nil {
					b.Fatal(err)
				}
				secs = res.Seconds()
			}
			b.ReportMetric(secs, "sim_seconds")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Real host wall-clock benchmarks ---

func hostBenchMatrix(b *testing.B) *sparse.Matrix {
	b.Helper()
	return dataset.Netflix.ScaledForBench(0.001).Generate(1).Matrix
}

// BenchmarkHostFlatVsBatched measures the real scheduling difference on
// this machine: static contiguous blocks (flat) vs dynamic chunked sharing
// (thread batching).
func BenchmarkHostFlatVsBatched(b *testing.B) {
	mx := hostBenchMatrix(b)
	run := func(b *testing.B, flat bool) {
		for i := 0; i < b.N; i++ {
			if _, err := host.Train(mx, host.Config{K: 10, Lambda: 0.1, Iterations: 1, Seed: 1,
				Flat: flat, Variant: variant.Options{Register: true}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("flat", func(b *testing.B) { run(b, true) })
	b.Run("batched", func(b *testing.B) { run(b, false) })
}

// BenchmarkHostVariants measures the full code-variant space (the paper's 8
// plus the fused/packed family) as real Go kernels.
func BenchmarkHostVariants(b *testing.B) {
	mx := hostBenchMatrix(b)
	for _, v := range variant.Extended() {
		v := v
		b.Run(v.ID(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := host.Train(mx, host.Config{K: 10, Lambda: 0.1, Iterations: 1, Seed: 1, Variant: v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCholesky measures the S3 solver at the paper's k=10 and at the
// larger k values cuMF targets.
func BenchmarkCholesky(b *testing.B) {
	for _, k := range []int{10, 32, 100} {
		k := k
		b.Run("k"+itoa(k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			y := make([]float32, 4*k*k)
			for i := range y {
				y[i] = rng.Float32()
			}
			cols := make([]int32, 4*k)
			for i := range cols {
				cols[i] = int32(i)
			}
			a := linalg.NewDense(k, k)
			rhs := make([]float32, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linalg.GramRegister(y, k, cols, a.Data)
				a.AddDiag(0.1)
				for j := range rhs {
					rhs[j] = 1
				}
				if err := linalg.CholeskySolve(a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRTranspose measures the CSR↔CSC conversion the solver does
// once per training run.
func BenchmarkCSRTranspose(b *testing.B) {
	mx := hostBenchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mx.R.ToCSC() == nil {
			b.Fatal("nil transpose")
		}
	}
}

// BenchmarkGatherGaxpy measures the S2 kernel forms.
func BenchmarkGatherGaxpy(b *testing.B) {
	const k, n, omega = 10, 4096, 200
	rng := rand.New(rand.NewSource(3))
	y := make([]float32, n*k)
	for i := range y {
		y[i] = rng.Float32()
	}
	cols := make([]int32, omega)
	vals := make([]float32, omega)
	for i := range cols {
		cols[i] = int32(rng.Intn(n))
		vals[i] = 3
	}
	svec := make([]float32, k)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GatherGaxpy(y, k, cols, vals, svec)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.GatherGaxpyUnrolled(y, k, cols, vals, svec)
		}
	})
}

// BenchmarkDatasetGenerate measures the synthetic generator (alias-method
// sampling) at bench scale.
func BenchmarkDatasetGenerate(b *testing.B) {
	p := dataset.YahooR4.ScaledForBench(0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Generate(int64(i)).Matrix.NNZ() == 0 {
			b.Fatal("empty generation")
		}
	}
}

// BenchmarkHostScaling measures real parallel scalability of the batched
// host solver across worker counts on this machine.
func BenchmarkHostScaling(b *testing.B) {
	mx := hostBenchMatrix(b)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run("workers"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := host.Train(mx, host.Config{K: 10, Lambda: 0.1, Iterations: 1, Seed: 1,
					Workers: workers, Variant: variant.Options{Register: true, Local: true}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedCholesky measures the batched small-system solver
// (reference [21]'s batched factorization idea) against per-system calls.
func BenchmarkBatchedCholesky(b *testing.B) {
	const k, batch = 10, 2048
	rng := rand.New(rand.NewSource(9))
	proto := linalg.NewDense(k, k)
	y := make([]float32, 4*k*k)
	for i := range y {
		y[i] = rng.Float32()
	}
	cols := make([]int32, 4*k)
	for i := range cols {
		cols[i] = int32(i)
	}
	linalg.GramRegister(y, k, cols, proto.Data)
	proto.AddDiag(0.5)
	fill := func(bs *linalg.BatchedSystems) {
		for i := 0; i < bs.Batch; i++ {
			a, rhs := bs.System(i)
			copy(a.Data, proto.Data)
			for j := range rhs {
				rhs[j] = rng.Float32()
			}
		}
	}
	b.Run("batched", func(b *testing.B) {
		bs := linalg.NewBatchedSystems(k, batch)
		for i := 0; i < b.N; i++ {
			fill(bs)
			if err := bs.SolveAll(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		bs := linalg.NewBatchedSystems(k, batch)
		for i := 0; i < b.N; i++ {
			fill(bs)
			if err := bs.SolveAll(1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopN measures the three top-N selection strategies over a large
// catalog (the serving-path hot loop): the O(items·log items) full-scan
// sort, the bounded heap (metrics.TopN, what Model.Recommend uses), and the
// sharded scorer the serving layer runs across its worker pool.
func BenchmarkTopN(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const items = 100000
	y := linalg.NewDense(items, 10)
	for i := range y.Data {
		y.Data[i] = rng.Float32()
	}
	x := linalg.NewDense(1, 10)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	coo := sparse.NewCOO(1, items)
	for i := 0; i < 200; i++ {
		coo.Append(0, rng.Intn(items), 5)
	}
	coo.Dedup(sparse.DedupKeepLast)
	coo.Rows, coo.Cols = 1, items
	m, err := coo.ToCSR()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(metrics.TopNSort(m, x, y, 0, 10)) != 10 {
				b.Fatal("wrong top-N size")
			}
		}
	})
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(metrics.TopN(m, x, y, 0, 10)) != 10 {
				b.Fatal("wrong top-N size")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		sc := serve.NewScorer(0)
		defer sc.Close()
		ex := serve.RatedExcluder(m, 0)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := sc.TopN(ctx, x.Row(0), y, ex, 10)
			if err != nil || len(out) != 10 {
				b.Fatalf("sharded top-N: %d items, %v", len(out), err)
			}
		}
	})
	// The quantized serving path at both compressed precisions: the same
	// sharded scorer, dispatched to the fused dequant-dot-TopK kernels.
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		q, err := quant.EncodeDense(y, prec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("sharded-"+prec.String(), func(b *testing.B) {
			sc := serve.NewScorer(0)
			defer sc.Close()
			ex := serve.RatedExcluder(m, 0)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := sc.TopNQuant(ctx, x.Row(0), q, ex, 10)
				if err != nil || len(out) != 10 {
					b.Fatalf("sharded quant top-N: %d items, %v", len(out), err)
				}
			}
		})
		// The bare kernel scan with a prepared query: the steady-state inner
		// loop, which must stay at 0 allocs/op (pinned by
		// quant.TestScanZeroAllocs; ReportAllocs makes regressions visible
		// in bench output too).
		b.Run("scan-"+prec.String(), func(b *testing.B) {
			ex := serve.RatedExcluder(m, 0)
			qr := q.Prepare(x.Row(0))
			t := metrics.NewTopK(10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Reset()
				q.ScanTopK(qr, 0, q.Rows, ex, t)
				if t.Len() != 10 {
					b.Fatal("wrong top-N size")
				}
			}
		})
	}
}
